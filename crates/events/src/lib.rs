//! The simulated OS's event vocabulary.
//!
//! Minor IDs per major class, the simulated-function name table used by the
//! PC sampler and lock call chains (names deliberately mirror the K42
//! routines visible in the paper's Figures 6 and 7), and the descriptor
//! registration that makes every event self-describing (§4.4).

use ktrace_core::TraceLogger;
use ktrace_format::{EventDescriptor, MajorId};

/// `SCHED` minors.
pub mod sched {
    /// Context switch: `[old_tid, new_tid, new_pid]`.
    pub const CTX_SWITCH: u16 = 1;
    /// CPU went idle: `[]`.
    pub const IDLE_START: u16 = 2;
    /// CPU left idle: `[idle_ns]`.
    pub const IDLE_END: u16 = 3;
    /// Task migrated: `[tid, from_cpu, to_cpu]`.
    pub const MIGRATE: u16 = 4;
    /// Task became runnable: `[tid, pid]`.
    pub const THREAD_START: u16 = 5;
    /// Task finished: `[tid, pid]`.
    pub const THREAD_EXIT: u16 = 6;
}

/// `PROC` minors.
pub mod proc {
    /// Process created: `[pid, parent_pid, name…]`.
    pub const CREATE: u16 = 1;
    /// Process exec'd a new image: `[pid, name…]`.
    pub const EXEC: u16 = 2;
    /// Process exited: `[pid]`.
    pub const EXIT: u16 = 3;
}

/// `SYSCALL` minors.
pub mod syscall {
    /// Entry: `[pid, tid, sysno]`.
    pub const ENTRY: u16 = 1;
    /// Exit: `[pid, tid, sysno]`.
    pub const EXIT: u16 = 2;
}

/// `EXCEPTION` minors (page faults and PPC-style IPC transitions).
pub mod exception {
    /// Page fault start: `[tid, fault_addr]`.
    pub const PGFLT: u16 = 1;
    /// Page fault done: `[tid, fault_addr]`.
    pub const PGFLT_DONE: u16 = 2;
    /// Protected procedure call: `[comm_id]`.
    pub const PPC_CALL: u16 = 3;
    /// Protected procedure return: `[comm_id]`.
    pub const PPC_RETURN: u16 = 4;
}

/// `MEM` minors.
pub mod mem {
    /// Region attached to an FCM: `[region, fcm]` (the paper's example).
    pub const FCM_ATCH_REG: u16 = 1;
    /// Region created: `[addr, size]`.
    pub const REG_CREATE: u16 = 2;
    /// Allocation served: `[size, addr]`.
    pub const ALLOC: u16 = 3;
    /// Shared-state read annotation: `[addr, tid]`. Emitted at shared-memory
    /// touch points so post-hoc race detectors (lockset / happens-before over
    /// the trace stream) can see the accesses, not just the locks.
    pub const ACCESS_READ: u16 = 4;
    /// Shared-state write annotation: `[addr, tid]`.
    pub const ACCESS_WRITE: u16 = 5;
}

/// `LOCK` minors.
pub mod lock {
    /// Lock requested: `[lock_id, tid, call_chain]`.
    pub const REQUEST: u16 = 1;
    /// Lock acquired: `[lock_id, tid, call_chain, spins, wait_ns]`.
    pub const ACQUIRED: u16 = 2;
    /// Lock released: `[lock_id, tid, hold_ns]`.
    pub const RELEASED: u16 = 3;
}

/// `IPC` minors.
pub mod ipc {
    /// Call into a server: `[from_pid, to_pid, fn_id]`.
    pub const CALL: u16 = 1;
    /// Return from a server: `[from_pid, to_pid, fn_id]`.
    pub const RETURN: u16 = 2;
}

/// `FS` minors (logged under the server's pid).
pub mod fs {
    /// Open: `[pid, path_hash]`.
    pub const OPEN: u16 = 1;
    /// Read: `[pid, bytes]`.
    pub const READ: u16 = 2;
    /// Write: `[pid, bytes]`.
    pub const WRITE: u16 = 3;
    /// Close: `[pid, path_hash]`.
    pub const CLOSE: u16 = 4;
}

/// `USER` minors.
pub mod user {
    /// New user program loaded: `[creator_pid, new_pid, name…]`
    /// (the paper's `TRACE_USER_RUN_UL_LOADER`).
    pub const RUN_UL_LOADER: u16 = 1;
    /// Program returned from main: `[pid]`
    /// (the paper's `TRACE_USER_RETURNED_MAIN`).
    pub const RETURNED_MAIN: u16 = 2;
}

/// `PROF` minors.
pub mod prof {
    /// Statistical PC sample: `[pid, tid, func_id]` (§4.5).
    pub const PC_SAMPLE: u16 = 1;
}

/// `HWPERF` minors (§2: hardware-counter values logged through the unified
/// stream, so "the counters [can] be sampled and understood at various
/// stages throughout the program['s] … execution").
pub mod hwperf {
    /// Counter sample: `[counter_id, cumulative_value, delta_since_last]`.
    pub const COUNTER_SAMPLE: u16 = 1;
}

/// Synthetic hardware-counter identities.
pub mod counter {
    /// Elapsed CPU cycles.
    pub const CYCLES: u64 = 1;
    /// Data-cache misses.
    pub const CACHE_MISSES: u64 = 2;
    /// TLB misses.
    pub const TLB_MISSES: u64 = 3;

    /// Display name for a counter.
    pub fn name(id: u64) -> &'static str {
        match id {
            CYCLES => "cycles",
            CACHE_MISSES => "cache_misses",
            TLB_MISSES => "tlb_misses",
            _ => "counter?",
        }
    }
}

/// Simulated system-call numbers.
pub mod sysno {
    pub const OPEN: u64 = 1;
    pub const READ: u64 = 2;
    pub const WRITE: u64 = 3;
    pub const CLOSE: u64 = 4;
    pub const FORK: u64 = 5;
    pub const EXEC: u64 = 6;
    pub const EXIT: u64 = 7;
    pub const BRK: u64 = 8;
    pub const MMAP: u64 = 9;
    pub const GETPID: u64 = 10;

    /// Human-readable system-call name.
    pub fn name(no: u64) -> &'static str {
        match no {
            OPEN => "SCopen",
            READ => "SCread",
            WRITE => "SCwrite",
            CLOSE => "SCclose",
            FORK => "SCfork",
            EXEC => "SCexecve",
            EXIT => "SCexit",
            BRK => "SCbrk",
            MMAP => "SCmmap",
            GETPID => "SCgetpid",
            _ => "SCunknown",
        }
    }
}

/// Simulated function IDs: the "program counter" domain of the PC sampler
/// and lock call chains. Names mirror the K42 routines in Figs. 6–7.
pub mod func {
    pub const UNKNOWN: u16 = 0;
    pub const FAIRBLOCK_ACQUIRE: u16 = 1;
    pub const GMALLOC: u16 = 2;
    pub const PMALLOC: u16 = 3;
    pub const ALLOC_REGION_ALLOC: u16 = 4;
    pub const PAGEALLOC_DEALLOC: u16 = 5;
    pub const PAGEALLOC_USER_DEALLOC: u16 = 6;
    pub const ALLOCPOOL_LARGE_FREE: u16 = 7;
    pub const ALLOCPOOL_LARGE_ALLOC: u16 = 8;
    pub const HASH_FIND: u16 = 9;
    pub const DIR_LOOKUP: u16 = 10;
    pub const MEMDESC_ALLOC: u16 = 11;
    pub const DENTRY_LOOKUP: u16 = 12;
    pub const IPC_CALLEE_ENTRY: u16 = 13;
    pub const XHANDLE_ALLOC: u16 = 14;
    pub const WORDCOPY: u16 = 15;
    pub const USER_COMPUTE: u16 = 16;
    pub const PGFLT_HANDLER: u16 = 17;
    pub const SYSCALL_DISPATCH: u16 = 18;
    pub const FCM_MAP_PAGE: u16 = 19;
    pub const PROCESS_FORK: u16 = 20;
    pub const PROG_EXEC_LOADER: u16 = 21;
    pub const SERVER_FILE_WRITE: u16 = 22;
    pub const SERVER_FILE_READ: u16 = 23;
    pub const RWLOCK_RELEASE: u16 = 24;
    pub const HASH_ADD: u16 = 25;

    /// Maps a function ID to its display name.
    pub fn name(id: u16) -> &'static str {
        match id {
            FAIRBLOCK_ACQUIRE => "FairBLock::_acquire()",
            GMALLOC => "GMalloc::gMalloc()",
            PMALLOC => "PMallocDefault::pMalloc(unsigned)",
            ALLOC_REGION_ALLOC => "AllocRegionManager::alloc(unsigned)",
            PAGEALLOC_DEALLOC => "PageAllocatorDefault::deallocPages(unsigned)",
            PAGEALLOC_USER_DEALLOC => "PageAllocatorUser::deallocPages(unsigned)",
            ALLOCPOOL_LARGE_FREE => "AllocPool::largeFree(void*)",
            ALLOCPOOL_LARGE_ALLOC => "AllocPool::largeAlloc(unsigned)",
            HASH_FIND => "HashSimpleBase<AllocGlobal, 0l>::find(unsigned long)",
            DIR_LOOKUP => "DirLinuxFS::externalLookupDirectory(char*)",
            MEMDESC_ALLOC => "MemDesc::alloc(DataChunk*)",
            DENTRY_LOOKUP => "DentryListHash::lookupPtr(char*)",
            IPC_CALLEE_ENTRY => "DispatcherDefault_IPCalleeEntry",
            XHANDLE_ALLOC => "XHandleTrans::alloc(Obj**)",
            WORDCOPY => "_wordcopy_fwd_aligned",
            USER_COMPUTE => "user_compute",
            PGFLT_HANDLER => "ExceptionLocal_PgfltHandler",
            SYSCALL_DISPATCH => "SysCallDispatch",
            FCM_MAP_PAGE => "FCMDefault::mapPage",
            PROCESS_FORK => "ProcessDefault::fork",
            PROG_EXEC_LOADER => "ProgExec_Loader",
            SERVER_FILE_WRITE => "ServerFileBlock::write",
            SERVER_FILE_READ => "ServerFileBlock::read",
            RWLOCK_RELEASE => "TmpRWLock<BLock>::releaseR()",
            HASH_ADD => "HashSNBBase<AllocGlobal, 0l, 8l>::add(unsigned long)",
            _ => "<unknown>",
        }
    }
}

/// Packs up to four function IDs (innermost first) into one 64-bit word.
pub fn pack_chain(chain: &[u16]) -> u64 {
    let mut word = 0u64;
    for (i, &f) in chain.iter().rev().take(4).enumerate() {
        word |= (f as u64) << (16 * i);
    }
    word
}

/// Unpacks a call-chain word into function IDs, innermost first.
pub fn unpack_chain(word: u64) -> Vec<u16> {
    (0..4)
        .map(|i| ((word >> (16 * i)) & 0xffff) as u16)
        .take_while(|&f| f != 0)
        .collect()
}

/// Registers self-describing descriptors for every simulator event.
pub fn register_all(logger: &TraceLogger) {
    let reg = |major: MajorId, minor: u16, name: &str, spec: &str, tpl: &str| {
        logger.register_event(
            major,
            minor,
            EventDescriptor::new(name, spec, tpl).expect("static descriptor is valid"),
        );
    };

    reg(MajorId::SCHED, sched::CTX_SWITCH, "TRACE_SCHED_CTX_SWITCH", "64 64 64",
        "switch from thread %0[%x] to thread %1[%x] pid %2[%d]");
    reg(MajorId::SCHED, sched::IDLE_START, "TRACE_SCHED_IDLE_START", "", "cpu idle");
    reg(MajorId::SCHED, sched::IDLE_END, "TRACE_SCHED_IDLE_END", "64", "cpu busy after %0[%d] ns idle");
    reg(MajorId::SCHED, sched::MIGRATE, "TRACE_SCHED_MIGRATE", "64 64 64",
        "thread %0[%x] migrated cpu %1[%d] -> cpu %2[%d]");
    reg(MajorId::SCHED, sched::THREAD_START, "TRACE_SCHED_THREAD_START", "64 64",
        "thread %0[%x] of pid %1[%d] runnable");
    reg(MajorId::SCHED, sched::THREAD_EXIT, "TRACE_SCHED_THREAD_EXIT", "64 64",
        "thread %0[%x] of pid %1[%d] exited");

    reg(MajorId::PROC, proc::CREATE, "TRACE_PROC_CREATE", "64 64 str",
        "process %0[%d] created by %1[%d] name %2[%s]");
    reg(MajorId::PROC, proc::EXEC, "TRACE_PROC_EXEC", "64 str", "process %0[%d] exec %1[%s]");
    reg(MajorId::PROC, proc::EXIT, "TRACE_PROC_EXIT", "64", "process %0[%d] exited");

    reg(MajorId::SYSCALL, syscall::ENTRY, "TRACE_SYSCALL_ENTRY", "64 64 64",
        "pid %0[%d] thread %1[%x] syscall %2[%d] entry");
    reg(MajorId::SYSCALL, syscall::EXIT, "TRACE_SYSCALL_EXIT", "64 64 64",
        "pid %0[%d] thread %1[%x] syscall %2[%d] exit");

    reg(MajorId::EXCEPTION, exception::PGFLT, "TRC_EXCEPTION_PGFLT", "64 64",
        "PGFLT, kernel thread %0[%llx], faultAddr %1[%llx]");
    reg(MajorId::EXCEPTION, exception::PGFLT_DONE, "TRC_EXCEPTION_PGFLT_DONE", "64 64",
        "PGFLT DONE, kernel thread %0[%llx], faultAddr %1[%llx]");
    reg(MajorId::EXCEPTION, exception::PPC_CALL, "TRC_EXCEPTION_PPC_CALL", "64",
        "PPC CALL, commID %0[%llx]");
    reg(MajorId::EXCEPTION, exception::PPC_RETURN, "TRC_EXCEPTION_PPC_RETURN", "64",
        "PPC RETURN, commID %0[%llx]");

    reg(MajorId::MEM, mem::FCM_ATCH_REG, "TRC_MEM_FCMCOM_ATCH_REG", "64 64",
        "Region %0[%llx] attached to FCM %1[%llx]");
    reg(MajorId::MEM, mem::REG_CREATE, "TRC_MEM_REG_CREATE_FIX", "64 64",
        "Region created addr %0[%llx] size %1[%llx]");
    reg(MajorId::MEM, mem::ALLOC, "TRC_MEM_ALLOC", "64 64",
        "alloc size %0[%d] addr %1[%llx]");
    reg(MajorId::MEM, mem::ACCESS_READ, "TRC_MEM_ACCESS_READ", "64 64",
        "shared read addr %0[%llx] by thread %1[%x]");
    reg(MajorId::MEM, mem::ACCESS_WRITE, "TRC_MEM_ACCESS_WRITE", "64 64",
        "shared write addr %0[%llx] by thread %1[%x]");

    reg(MajorId::LOCK, lock::REQUEST, "TRACE_LOCK_REQUEST", "64 64 64",
        "lock %0[%llx] requested by thread %1[%x] chain %2[%llx]");
    reg(MajorId::LOCK, lock::ACQUIRED, "TRACE_LOCK_ACQUIRED", "64 64 64 64 64",
        "lock %0[%llx] acquired by thread %1[%x] chain %2[%llx] spins %3[%d] wait %4[%d] ns");
    reg(MajorId::LOCK, lock::RELEASED, "TRACE_LOCK_RELEASED", "64 64 64",
        "lock %0[%llx] released by thread %1[%x] held %2[%d] ns");

    reg(MajorId::IPC, ipc::CALL, "TRACE_IPC_CALL", "64 64 64",
        "IPC pid %0[%d] -> pid %1[%d] fn %2[%d]");
    reg(MajorId::IPC, ipc::RETURN, "TRACE_IPC_RETURN", "64 64 64",
        "IPC return pid %0[%d] <- pid %1[%d] fn %2[%d]");

    reg(MajorId::FS, fs::OPEN, "TRACE_FS_OPEN", "64 64", "pid %0[%d] open path#%1[%x]");
    reg(MajorId::FS, fs::READ, "TRACE_FS_READ", "64 64", "pid %0[%d] read %1[%d] bytes");
    reg(MajorId::FS, fs::WRITE, "TRACE_FS_WRITE", "64 64", "pid %0[%d] write %1[%d] bytes");
    reg(MajorId::FS, fs::CLOSE, "TRACE_FS_CLOSE", "64 64", "pid %0[%d] close path#%1[%x]");

    reg(MajorId::USER, user::RUN_UL_LOADER, "TRACE_USER_RUN_UL_LOADER", "64 64 str",
        "process %0[%d] created new process with id %1[%d] name %2[%s]");
    reg(MajorId::USER, user::RETURNED_MAIN, "TRACE_USER_RETURNED_MAIN", "64",
        "process %0[%d] returned from main");

    reg(MajorId::PROF, prof::PC_SAMPLE, "TRACE_PROF_PC_SAMPLE", "64 64 64",
        "pc sample pid %0[%d] thread %1[%x] func %2[%d]");

    reg(MajorId::HWPERF, hwperf::COUNTER_SAMPLE, "TRACE_HWPERF_COUNTER", "64 64 64",
        "counter %0[%d] value %1[%d] delta %2[%d]");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_clock::SyncClock;
    use ktrace_core::{TraceConfig, TraceLogger};
    use std::sync::Arc;

    #[test]
    fn chain_pack_roundtrip() {
        let chain = [func::GMALLOC, func::PMALLOC, func::ALLOC_REGION_ALLOC];
        let word = pack_chain(&chain);
        // Innermost (last pushed) function in the low bits.
        assert_eq!(unpack_chain(word), vec![
            func::ALLOC_REGION_ALLOC,
            func::PMALLOC,
            func::GMALLOC
        ]);
        assert_eq!(unpack_chain(pack_chain(&[])), Vec::<u16>::new());
        // Deeper chains keep the innermost four.
        let deep = [1u16, 2, 3, 4, 5, 6];
        assert_eq!(unpack_chain(pack_chain(&deep)), vec![6, 5, 4, 3]);
    }

    #[test]
    fn func_names_defined_for_all_ids() {
        for id in 1..=25u16 {
            assert_ne!(func::name(id), "<unknown>", "func {id}");
        }
        assert_eq!(func::name(999), "<unknown>");
        assert_eq!(func::name(func::GMALLOC), "GMalloc::gMalloc()");
    }

    #[test]
    fn all_descriptors_register_and_render() {
        let logger = TraceLogger::new(TraceConfig::small(), Arc::new(SyncClock::new()), 1).unwrap();
        register_all(&logger);
        let registry = logger.registry();
        // Builtin CONTROL (3) + the simulator's events.
        assert!(registry.len() > 25);
        // Spot-check the paper's example renders through the registry.
        let (_, _, desc) = registry.by_name("TRC_MEM_FCMCOM_ATCH_REG").unwrap();
        let words = desc
            .spec
            .encode(&[
                ktrace_format::FieldValue::Int(0x800000001022cc98),
                ktrace_format::FieldValue::Int(0xe100000000003f30),
            ])
            .unwrap();
        assert_eq!(
            desc.describe(&words).unwrap(),
            "Region 800000001022cc98 attached to FCM e100000000003f30"
        );
    }

    #[test]
    fn sysno_names() {
        assert_eq!(sysno::name(sysno::EXEC), "SCexecve");
        assert_eq!(sysno::name(77), "SCunknown");
    }
}
