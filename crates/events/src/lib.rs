//! The simulated OS's event vocabulary.
//!
//! Minor IDs per major class, the simulated-function name table used by the
//! PC sampler and lock call chains (names deliberately mirror the K42
//! routines visible in the paper's Figures 6 and 7), and the descriptor
//! registration that makes every event self-describing (§4.4).
//!
//! Every event module is declared through [`ktrace_event!`], which generates
//! the minor-ID consts, the per-module registration table, and compile-time
//! schema checks in one place — so an event cannot be logged under a name
//! the registry doesn't know, and the source-level linter (`ktrace-lint`)
//! has a single structured declaration to cross-check call sites against.

use ktrace_core::TraceLogger;
use ktrace_format::{EventDescriptor, MajorId};

pub mod decode;

#[doc(hidden)]
pub use ktrace_format as __format;

/// One event registration row: everything the self-describing registry
/// needs, produced by [`ktrace_event!`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDef {
    /// Minor ID within the module's major class.
    pub minor: u16,
    /// Symbolic event name (the K42-style `TRACE_…` identifier).
    pub name: &'static str,
    /// Field spec: space-separated `8|16|32|64|str` tokens.
    pub spec: &'static str,
    /// Render template with `%N[%fmt]` field references.
    pub template: &'static str,
}

/// Declares the event vocabulary of one (or more) major classes.
///
/// For every module block this generates:
///
/// * a `pub const NAME: u16` per event (doc comments — including the
///   `[field, …]` payload annotation convention — pass through, so rustdoc
///   and `ktrace-lint` both see them);
/// * `MAJOR`, the module's [`MajorId`];
/// * `EVENTS`, a const [`EventDef`] table driving [`register_all`];
/// * compile-time assertions: the major is registerable (not the reserved
///   `CONTROL`/`TEST` classes, within the 64-ID mask space), every field
///   spec parses, no spec can exceed [`MAX_PAYLOAD_WORDS`]
///   (`ktrace_format::MAX_PAYLOAD_WORDS`), and minor IDs are distinct
///   within the module. The minor is typed `u16`, so a literal that
///   overflows the header's 16-bit minor field is itself a compile error.
///
/// [`MAX_PAYLOAD_WORDS`]: ktrace_format::MAX_PAYLOAD_WORDS
///
/// ```
/// ktrace_events::ktrace_event! {
///     /// Demo minors.
///     pub mod demo [ktrace_events::__format::MajorId::USER] {
///         /// Something happened: `[value]`.
///         HAPPENED = 1 => ("TRACE_DEMO_HAPPENED", "64", "value %0[%d]"),
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! ktrace_event {
    ($(
        $(#[$modmeta:meta])*
        $vis:vis mod $module:ident [$major:expr] {
            $(
                $(#[$evmeta:meta])*
                $name:ident = $minor:literal => ($evname:literal, $spec:literal, $template:literal)
            ),* $(,)?
        }
    )*) => {
        $(
            $(#[$modmeta])*
            $vis mod $module {
                #[allow(unused_imports)]
                use super::*;

                $(
                    $(#[$evmeta])*
                    pub const $name: u16 = $minor;
                )*

                /// The major ID every event in this module is logged under.
                pub const MAJOR: $crate::__format::MajorId = $major;

                /// Registration rows for this module, one per event.
                pub const EVENTS: &[$crate::EventDef] = &[
                    $($crate::EventDef {
                        minor: $minor,
                        name: $evname,
                        spec: $spec,
                        template: $template,
                    }),*
                ];

                const _: () = {
                    assert!(
                        $crate::__major_is_registerable(MAJOR),
                        "major is reserved (CONTROL/TEST) or outside the trace-mask ID space"
                    );
                    $(
                        assert!(
                            $crate::__spec_is_valid($spec),
                            concat!("invalid field spec for ", $evname)
                        );
                        assert!(
                            $crate::__spec_min_words($spec)
                                <= $crate::__format::MAX_PAYLOAD_WORDS,
                            concat!("payload cannot fit one event for ", $evname)
                        );
                    )*
                    assert!(
                        $crate::__minors_distinct(EVENTS),
                        "duplicate minor ID within this module"
                    );
                };
            }
        )*
    };
}

/// Const validity check for a field spec: space-separated tokens, each one
/// of `8`, `16`, `32`, `64`, `str`. The empty spec (no payload) is valid.
#[doc(hidden)]
pub const fn __spec_is_valid(spec: &str) -> bool {
    let b = spec.as_bytes();
    if b.is_empty() {
        return true;
    }
    let mut i = 0;
    loop {
        let start = i;
        while i < b.len() && b[i] != b' ' {
            i += 1;
        }
        let ok = match i - start {
            1 => b[start] == b'8',
            2 => matches!(
                (b[start], b[start + 1]),
                (b'1', b'6') | (b'3', b'2') | (b'6', b'4')
            ),
            3 => b[start] == b's' && b[start + 1] == b't' && b[start + 2] == b'r',
            _ => false,
        };
        if !ok {
            return false;
        }
        if i == b.len() {
            return true;
        }
        i += 1; // consume the separating space
        if i == b.len() {
            return false; // trailing space
        }
    }
}

/// Const minimum payload word count of a field spec: one word per token
/// (a `str` token occupies at least its length word).
#[doc(hidden)]
pub const fn __spec_min_words(spec: &str) -> usize {
    let b = spec.as_bytes();
    if b.is_empty() {
        return 0;
    }
    let mut words = 1;
    let mut i = 0;
    while i < b.len() {
        if b[i] == b' ' {
            words += 1;
        }
        i += 1;
    }
    words
}

/// Const check that every row in a module table has a distinct minor.
#[doc(hidden)]
pub const fn __minors_distinct(events: &[EventDef]) -> bool {
    let mut i = 0;
    while i < events.len() {
        let mut j = i + 1;
        while j < events.len() {
            if events[i].minor == events[j].minor {
                return false;
            }
            j += 1;
        }
        i += 1;
    }
    true
}

/// Const check that a major may carry registered simulator events: inside
/// the 64-ID mask space and not one of the reserved classes (`CONTROL`
/// carries the stream's own filler/anchor/dropped events; `TEST` is the
/// harness scratch class).
#[doc(hidden)]
pub const fn __major_is_registerable(major: MajorId) -> bool {
    let raw = major.raw();
    (raw as usize) < ktrace_format::NUM_MAJOR_IDS
        && raw != MajorId::CONTROL.raw()
        && raw != MajorId::TEST.raw()
}

ktrace_event! {
    /// `SCHED` minors.
    pub mod sched [MajorId::SCHED] {
        /// Context switch: `[old_tid, new_tid, new_pid]`.
        CTX_SWITCH = 1 => ("TRACE_SCHED_CTX_SWITCH", "64 64 64",
            "switch from thread %0[%x] to thread %1[%x] pid %2[%d]"),
        /// CPU went idle: `[]`.
        IDLE_START = 2 => ("TRACE_SCHED_IDLE_START", "", "cpu idle"),
        /// CPU left idle: `[idle_ns]`.
        IDLE_END = 3 => ("TRACE_SCHED_IDLE_END", "64", "cpu busy after %0[%d] ns idle"),
        /// Task migrated: `[tid, from_cpu, to_cpu]`.
        MIGRATE = 4 => ("TRACE_SCHED_MIGRATE", "64 64 64",
            "thread %0[%x] migrated cpu %1[%d] -> cpu %2[%d]"),
        /// Task became runnable: `[tid, pid]`.
        THREAD_START = 5 => ("TRACE_SCHED_THREAD_START", "64 64",
            "thread %0[%x] of pid %1[%d] runnable"),
        /// Task finished: `[tid, pid]`.
        THREAD_EXIT = 6 => ("TRACE_SCHED_THREAD_EXIT", "64 64",
            "thread %0[%x] of pid %1[%d] exited"),
    }

    /// `PROC` minors.
    pub mod proc [MajorId::PROC] {
        /// Process created: `[pid, parent_pid, name…]`.
        CREATE = 1 => ("TRACE_PROC_CREATE", "64 64 str",
            "process %0[%d] created by %1[%d] name %2[%s]"),
        /// Process exec'd a new image: `[pid, name…]`.
        EXEC = 2 => ("TRACE_PROC_EXEC", "64 str", "process %0[%d] exec %1[%s]"),
        /// Process exited: `[pid]`.
        EXIT = 3 => ("TRACE_PROC_EXIT", "64", "process %0[%d] exited"),
    }

    /// `SYSCALL` minors.
    pub mod syscall [MajorId::SYSCALL] {
        /// Entry: `[pid, tid, sysno]`.
        ENTRY = 1 => ("TRACE_SYSCALL_ENTRY", "64 64 64",
            "pid %0[%d] thread %1[%x] syscall %2[%d] entry"),
        /// Exit: `[pid, tid, sysno]`.
        EXIT = 2 => ("TRACE_SYSCALL_EXIT", "64 64 64",
            "pid %0[%d] thread %1[%x] syscall %2[%d] exit"),
    }

    /// `EXCEPTION` minors (page faults and PPC-style IPC transitions).
    pub mod exception [MajorId::EXCEPTION] {
        /// Page fault start: `[tid, fault_addr]`.
        PGFLT = 1 => ("TRC_EXCEPTION_PGFLT", "64 64",
            "PGFLT, kernel thread %0[%llx], faultAddr %1[%llx]"),
        /// Page fault done: `[tid, fault_addr]`.
        PGFLT_DONE = 2 => ("TRC_EXCEPTION_PGFLT_DONE", "64 64",
            "PGFLT DONE, kernel thread %0[%llx], faultAddr %1[%llx]"),
        /// Protected procedure call: `[comm_id]`.
        PPC_CALL = 3 => ("TRC_EXCEPTION_PPC_CALL", "64", "PPC CALL, commID %0[%llx]"),
        /// Protected procedure return: `[comm_id]`.
        PPC_RETURN = 4 => ("TRC_EXCEPTION_PPC_RETURN", "64", "PPC RETURN, commID %0[%llx]"),
    }

    /// `MEM` minors.
    pub mod mem [MajorId::MEM] {
        /// Region attached to an FCM: `[region, fcm]` (the paper's example).
        FCM_ATCH_REG = 1 => ("TRC_MEM_FCMCOM_ATCH_REG", "64 64",
            "Region %0[%llx] attached to FCM %1[%llx]"),
        /// Region created: `[addr, size]`.
        REG_CREATE = 2 => ("TRC_MEM_REG_CREATE_FIX", "64 64",
            "Region created addr %0[%llx] size %1[%llx]"),
        /// Allocation served: `[size, addr]`.
        ALLOC = 3 => ("TRC_MEM_ALLOC", "64 64", "alloc size %0[%d] addr %1[%llx]"),
        /// Shared-state read annotation: `[addr, tid]`. Emitted at shared-memory
        /// touch points so post-hoc race detectors (lockset / happens-before over
        /// the trace stream) can see the accesses, not just the locks.
        ACCESS_READ = 4 => ("TRC_MEM_ACCESS_READ", "64 64",
            "shared read addr %0[%llx] by thread %1[%x]"),
        /// Shared-state write annotation: `[addr, tid]`.
        ACCESS_WRITE = 5 => ("TRC_MEM_ACCESS_WRITE", "64 64",
            "shared write addr %0[%llx] by thread %1[%x]"),
    }

    /// `LOCK` minors.
    pub mod lock [MajorId::LOCK] {
        /// Lock requested: `[lock_id, tid, call_chain]`.
        REQUEST = 1 => ("TRACE_LOCK_REQUEST", "64 64 64",
            "lock %0[%llx] requested by thread %1[%x] chain %2[%llx]"),
        /// Lock acquired: `[lock_id, tid, call_chain, spins, wait_ns]`.
        ACQUIRED = 2 => ("TRACE_LOCK_ACQUIRED", "64 64 64 64 64",
            "lock %0[%llx] acquired by thread %1[%x] chain %2[%llx] spins %3[%d] wait %4[%d] ns"),
        /// Lock released: `[lock_id, tid, hold_ns]`.
        RELEASED = 3 => ("TRACE_LOCK_RELEASED", "64 64 64",
            "lock %0[%llx] released by thread %1[%x] held %2[%d] ns"),
    }

    /// `IPC` minors.
    pub mod ipc [MajorId::IPC] {
        /// Call into a server: `[from_pid, to_pid, fn_id]`.
        CALL = 1 => ("TRACE_IPC_CALL", "64 64 64", "IPC pid %0[%d] -> pid %1[%d] fn %2[%d]"),
        /// Return from a server: `[from_pid, to_pid, fn_id]`.
        RETURN = 2 => ("TRACE_IPC_RETURN", "64 64 64",
            "IPC return pid %0[%d] <- pid %1[%d] fn %2[%d]"),
    }

    /// `FS` minors (logged under the server's pid).
    pub mod fs [MajorId::FS] {
        /// Open: `[pid, path_hash]`.
        OPEN = 1 => ("TRACE_FS_OPEN", "64 64", "pid %0[%d] open path#%1[%x]"),
        /// Read: `[pid, bytes]`.
        READ = 2 => ("TRACE_FS_READ", "64 64", "pid %0[%d] read %1[%d] bytes"),
        /// Write: `[pid, bytes]`.
        WRITE = 3 => ("TRACE_FS_WRITE", "64 64", "pid %0[%d] write %1[%d] bytes"),
        /// Close: `[pid, path_hash]`.
        CLOSE = 4 => ("TRACE_FS_CLOSE", "64 64", "pid %0[%d] close path#%1[%x]"),
    }

    /// `USER` minors.
    pub mod user [MajorId::USER] {
        /// New user program loaded: `[creator_pid, new_pid, name…]`
        /// (the paper's `TRACE_USER_RUN_UL_LOADER`).
        RUN_UL_LOADER = 1 => ("TRACE_USER_RUN_UL_LOADER", "64 64 str",
            "process %0[%d] created new process with id %1[%d] name %2[%s]"),
        /// Program returned from main: `[pid]`
        /// (the paper's `TRACE_USER_RETURNED_MAIN`).
        RETURNED_MAIN = 2 => ("TRACE_USER_RETURNED_MAIN", "64",
            "process %0[%d] returned from main"),
        /// Paced application tick from the adaptive closed-loop drivers
        /// (`ktrace-tools adapt`, `tests/adapt_loop.rs`): `[seq, phase]`.
        APP_TICK = 3 => ("TRACE_USER_APP_TICK", "64 64",
            "tick %0[%d] phase %1[%d]"),
    }

    /// `PROF` minors.
    pub mod prof [MajorId::PROF] {
        /// Statistical PC sample: `[pid, tid, func_id]` (§4.5).
        PC_SAMPLE = 1 => ("TRACE_PROF_PC_SAMPLE", "64 64 64",
            "pc sample pid %0[%d] thread %1[%x] func %2[%d]"),
    }

    /// `HWPERF` minors (§2: hardware-counter values logged through the unified
    /// stream, so "the counters [can] be sampled and understood at various
    /// stages throughout the program['s] … execution").
    pub mod hwperf [MajorId::HWPERF] {
        /// Counter sample: `[counter_id, cumulative_value, delta_since_last]`.
        COUNTER_SAMPLE = 1 => ("TRACE_HWPERF_COUNTER", "64 64 64",
            "counter %0[%d] value %1[%d] delta %2[%d]"),
    }
}

/// Every declared module's registration table, in major-ID order.
pub const ALL_EVENTS: &[(MajorId, &[EventDef])] = &[
    (sched::MAJOR, sched::EVENTS),
    (proc::MAJOR, proc::EVENTS),
    (syscall::MAJOR, syscall::EVENTS),
    (exception::MAJOR, exception::EVENTS),
    (mem::MAJOR, mem::EVENTS),
    (lock::MAJOR, lock::EVENTS),
    (ipc::MAJOR, ipc::EVENTS),
    (fs::MAJOR, fs::EVENTS),
    (user::MAJOR, user::EVENTS),
    (prof::MAJOR, prof::EVENTS),
    (hwperf::MAJOR, hwperf::EVENTS),
];

/// Synthetic hardware-counter identities.
pub mod counter {
    /// Elapsed CPU cycles.
    pub const CYCLES: u64 = 1;
    /// Data-cache misses.
    pub const CACHE_MISSES: u64 = 2;
    /// TLB misses.
    pub const TLB_MISSES: u64 = 3;

    /// Display name for a counter.
    pub fn name(id: u64) -> &'static str {
        match id {
            CYCLES => "cycles",
            CACHE_MISSES => "cache_misses",
            TLB_MISSES => "tlb_misses",
            _ => "counter?",
        }
    }
}

/// Simulated system-call numbers.
pub mod sysno {
    pub const OPEN: u64 = 1;
    pub const READ: u64 = 2;
    pub const WRITE: u64 = 3;
    pub const CLOSE: u64 = 4;
    pub const FORK: u64 = 5;
    pub const EXEC: u64 = 6;
    pub const EXIT: u64 = 7;
    pub const BRK: u64 = 8;
    pub const MMAP: u64 = 9;
    pub const GETPID: u64 = 10;

    /// Human-readable system-call name.
    pub fn name(no: u64) -> &'static str {
        match no {
            OPEN => "SCopen",
            READ => "SCread",
            WRITE => "SCwrite",
            CLOSE => "SCclose",
            FORK => "SCfork",
            EXEC => "SCexecve",
            EXIT => "SCexit",
            BRK => "SCbrk",
            MMAP => "SCmmap",
            GETPID => "SCgetpid",
            _ => "SCunknown",
        }
    }
}

/// Simulated function IDs: the "program counter" domain of the PC sampler
/// and lock call chains. Names mirror the K42 routines in Figs. 6–7.
pub mod func {
    pub const UNKNOWN: u16 = 0;
    pub const FAIRBLOCK_ACQUIRE: u16 = 1;
    pub const GMALLOC: u16 = 2;
    pub const PMALLOC: u16 = 3;
    pub const ALLOC_REGION_ALLOC: u16 = 4;
    pub const PAGEALLOC_DEALLOC: u16 = 5;
    pub const PAGEALLOC_USER_DEALLOC: u16 = 6;
    pub const ALLOCPOOL_LARGE_FREE: u16 = 7;
    pub const ALLOCPOOL_LARGE_ALLOC: u16 = 8;
    pub const HASH_FIND: u16 = 9;
    pub const DIR_LOOKUP: u16 = 10;
    pub const MEMDESC_ALLOC: u16 = 11;
    pub const DENTRY_LOOKUP: u16 = 12;
    pub const IPC_CALLEE_ENTRY: u16 = 13;
    pub const XHANDLE_ALLOC: u16 = 14;
    pub const WORDCOPY: u16 = 15;
    pub const USER_COMPUTE: u16 = 16;
    pub const PGFLT_HANDLER: u16 = 17;
    pub const SYSCALL_DISPATCH: u16 = 18;
    pub const FCM_MAP_PAGE: u16 = 19;
    pub const PROCESS_FORK: u16 = 20;
    pub const PROG_EXEC_LOADER: u16 = 21;
    pub const SERVER_FILE_WRITE: u16 = 22;
    pub const SERVER_FILE_READ: u16 = 23;
    pub const RWLOCK_RELEASE: u16 = 24;
    pub const HASH_ADD: u16 = 25;

    /// Maps a function ID to its display name.
    pub fn name(id: u16) -> &'static str {
        match id {
            FAIRBLOCK_ACQUIRE => "FairBLock::_acquire()",
            GMALLOC => "GMalloc::gMalloc()",
            PMALLOC => "PMallocDefault::pMalloc(unsigned)",
            ALLOC_REGION_ALLOC => "AllocRegionManager::alloc(unsigned)",
            PAGEALLOC_DEALLOC => "PageAllocatorDefault::deallocPages(unsigned)",
            PAGEALLOC_USER_DEALLOC => "PageAllocatorUser::deallocPages(unsigned)",
            ALLOCPOOL_LARGE_FREE => "AllocPool::largeFree(void*)",
            ALLOCPOOL_LARGE_ALLOC => "AllocPool::largeAlloc(unsigned)",
            HASH_FIND => "HashSimpleBase<AllocGlobal, 0l>::find(unsigned long)",
            DIR_LOOKUP => "DirLinuxFS::externalLookupDirectory(char*)",
            MEMDESC_ALLOC => "MemDesc::alloc(DataChunk*)",
            DENTRY_LOOKUP => "DentryListHash::lookupPtr(char*)",
            IPC_CALLEE_ENTRY => "DispatcherDefault_IPCalleeEntry",
            XHANDLE_ALLOC => "XHandleTrans::alloc(Obj**)",
            WORDCOPY => "_wordcopy_fwd_aligned",
            USER_COMPUTE => "user_compute",
            PGFLT_HANDLER => "ExceptionLocal_PgfltHandler",
            SYSCALL_DISPATCH => "SysCallDispatch",
            FCM_MAP_PAGE => "FCMDefault::mapPage",
            PROCESS_FORK => "ProcessDefault::fork",
            PROG_EXEC_LOADER => "ProgExec_Loader",
            SERVER_FILE_WRITE => "ServerFileBlock::write",
            SERVER_FILE_READ => "ServerFileBlock::read",
            RWLOCK_RELEASE => "TmpRWLock<BLock>::releaseR()",
            HASH_ADD => "HashSNBBase<AllocGlobal, 0l, 8l>::add(unsigned long)",
            _ => "<unknown>",
        }
    }
}

/// Packs up to four function IDs (innermost first) into one 64-bit word.
pub fn pack_chain(chain: &[u16]) -> u64 {
    let mut word = 0u64;
    for (i, &f) in chain.iter().rev().take(4).enumerate() {
        word |= (f as u64) << (16 * i);
    }
    word
}

/// Unpacks a call-chain word into function IDs, innermost first.
pub fn unpack_chain(word: u64) -> Vec<u16> {
    (0..4)
        .map(|i| ((word >> (16 * i)) & 0xffff) as u16)
        .take_while(|&f| f != 0)
        .collect()
}

/// Registers self-describing descriptors for every simulator event.
pub fn register_all(logger: &TraceLogger) {
    for &(major, events) in ALL_EVENTS {
        for def in events {
            logger.register_event(
                major,
                def.minor,
                EventDescriptor::new(def.name, def.spec, def.template)
                    .expect("static descriptor is valid"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_clock::SyncClock;
    use ktrace_core::{TraceConfig, TraceLogger};
    use std::sync::Arc;

    #[test]
    fn chain_pack_roundtrip() {
        let chain = [func::GMALLOC, func::PMALLOC, func::ALLOC_REGION_ALLOC];
        let word = pack_chain(&chain);
        // Innermost (last pushed) function in the low bits.
        assert_eq!(
            unpack_chain(word),
            vec![func::ALLOC_REGION_ALLOC, func::PMALLOC, func::GMALLOC]
        );
        assert_eq!(unpack_chain(pack_chain(&[])), Vec::<u16>::new());
        // Deeper chains keep the innermost four.
        let deep = [1u16, 2, 3, 4, 5, 6];
        assert_eq!(unpack_chain(pack_chain(&deep)), vec![6, 5, 4, 3]);
    }

    #[test]
    fn func_names_defined_for_all_ids() {
        for id in 1..=25u16 {
            assert_ne!(func::name(id), "<unknown>", "func {id}");
        }
        assert_eq!(func::name(999), "<unknown>");
        assert_eq!(func::name(func::GMALLOC), "GMalloc::gMalloc()");
    }

    #[test]
    fn all_descriptors_register_and_render() {
        let logger = TraceLogger::builder()
            .geometry(TraceConfig::small())
            .clock(Arc::new(SyncClock::new()))
            .ncpus(1)
            .build()
            .unwrap();
        register_all(&logger);
        let registry = logger.registry();
        // Builtin CONTROL (3) + the simulator's events.
        assert!(registry.len() > 25);
        // Spot-check the paper's example renders through the registry.
        let (_, _, desc) = registry.by_name("TRC_MEM_FCMCOM_ATCH_REG").unwrap();
        let words = desc
            .spec
            .encode(&[
                ktrace_format::FieldValue::Int(0x800000001022cc98),
                ktrace_format::FieldValue::Int(0xe100000000003f30),
            ])
            .unwrap();
        assert_eq!(
            desc.describe(&words).unwrap(),
            "Region 800000001022cc98 attached to FCM e100000000003f30"
        );
    }

    #[test]
    fn sysno_names() {
        assert_eq!(sysno::name(sysno::EXEC), "SCexecve");
        assert_eq!(sysno::name(77), "SCunknown");
    }

    #[test]
    fn macro_tables_match_consts() {
        // The generated consts and the EVENTS rows must agree — the linter
        // leans on this correspondence.
        assert_eq!(sched::MAJOR, ktrace_format::MajorId::SCHED);
        assert!(sched::EVENTS.iter().any(|d| d.minor == sched::CTX_SWITCH));
        assert_eq!(sched::EVENTS.len(), 6);
        assert_eq!(
            lock::EVENTS
                .iter()
                .find(|d| d.minor == lock::ACQUIRED)
                .unwrap()
                .spec,
            "64 64 64 64 64"
        );
        // Every module is in ALL_EVENTS exactly once, majors distinct.
        let mut majors: Vec<u8> = ALL_EVENTS.iter().map(|(m, _)| m.raw()).collect();
        majors.sort_unstable();
        majors.dedup();
        assert_eq!(majors.len(), ALL_EVENTS.len());
    }

    #[test]
    fn every_table_spec_parses_at_runtime_too() {
        for &(major, events) in ALL_EVENTS {
            for def in events {
                assert!(
                    ktrace_format::FieldSpec::parse(def.spec).is_ok(),
                    "{major:?}/{} has unparseable spec {:?}",
                    def.name,
                    def.spec
                );
                assert!(
                    __spec_is_valid(def.spec),
                    "const check disagrees for {}",
                    def.name
                );
                assert_eq!(
                    __spec_min_words(def.spec),
                    def.spec.split_ascii_whitespace().count(),
                    "const word count disagrees for {}",
                    def.name
                );
            }
        }
    }

    #[test]
    fn const_checks_reject_bad_inputs() {
        assert!(!__spec_is_valid("64 65"));
        assert!(!__spec_is_valid("64  64")); // double space
        assert!(!__spec_is_valid("64 ")); // trailing space
        assert!(__spec_is_valid(""));
        assert!(__spec_is_valid("8 16 32 64 str"));
        assert!(!__major_is_registerable(ktrace_format::MajorId::CONTROL));
        assert!(!__major_is_registerable(ktrace_format::MajorId::TEST));
        assert!(__major_is_registerable(ktrace_format::MajorId::SCHED));
        let dup = [
            EventDef {
                minor: 1,
                name: "A",
                spec: "",
                template: "",
            },
            EventDef {
                minor: 1,
                name: "B",
                spec: "",
                template: "",
            },
        ];
        assert!(!__minors_distinct(&dup));
        assert!(__minors_distinct(&dup[..1]));
    }
}
