//! Typed decode of the shared event vocabulary.
//!
//! Every analysis used to re-implement the same `match (major, minor)` +
//! `payload.len()` dance over [`RawEvent`]s; this module is the single
//! record-walking helper they share instead. Decoders are strict about the
//! declared schema arity (see the [`ktrace_event!`](crate::ktrace_event)
//! tables): an event whose payload is shorter than its declaration decodes
//! to `None`, exactly as the ad-hoc loops skipped it.

use crate::{lock, sched};
use ktrace_core::reader::RawEvent;
use ktrace_format::MajorId;

/// A decoded `LOCK` event (§4.6's REQUEST/ACQUIRED/RELEASED triple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockEv {
    /// `[lock_id, tid, call_chain]` — the thread started waiting.
    Request {
        /// Lock identity.
        lock: u64,
        /// Requesting thread.
        tid: u64,
        /// Packed call chain (see [`crate::unpack_chain`]).
        chain: u64,
    },
    /// `[lock_id, tid, call_chain, spins, wait_ns]` — the wait ended.
    Acquired {
        /// Lock identity.
        lock: u64,
        /// Acquiring thread.
        tid: u64,
        /// Packed call chain.
        chain: u64,
        /// Spin-loop iterations while waiting.
        spins: u64,
        /// Wait time in nanoseconds.
        wait_ns: u64,
    },
    /// `[lock_id, tid, hold_ns]` — the hold ended.
    Released {
        /// Lock identity.
        lock: u64,
        /// Releasing thread.
        tid: u64,
        /// Hold time in nanoseconds.
        hold_ns: u64,
    },
}

/// Decodes one `LOCK` event, or `None` for other majors, unknown minors,
/// and under-length payloads.
pub fn lock_event(e: &RawEvent) -> Option<LockEv> {
    if e.major != MajorId::LOCK {
        return None;
    }
    let p = &e.payload;
    match e.minor {
        lock::REQUEST if p.len() >= 3 => Some(LockEv::Request {
            lock: p[0],
            tid: p[1],
            chain: p[2],
        }),
        lock::ACQUIRED if p.len() >= 5 => Some(LockEv::Acquired {
            lock: p[0],
            tid: p[1],
            chain: p[2],
            spins: p[3],
            wait_ns: p[4],
        }),
        lock::RELEASED if p.len() >= 3 => Some(LockEv::Released {
            lock: p[0],
            tid: p[1],
            hold_ns: p[2],
        }),
        _ => None,
    }
}

/// A decoded `SCHED` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEv {
    /// `[old_tid, new_tid, new_pid]`.
    CtxSwitch {
        /// Outgoing thread.
        old_tid: u64,
        /// Incoming thread.
        new_tid: u64,
        /// Incoming thread's process.
        new_pid: u64,
    },
    /// `[]` — the CPU went idle.
    IdleStart,
    /// `[idle_ns]` — the CPU left idle.
    IdleEnd {
        /// Length of the idle period in nanoseconds.
        idle_ns: u64,
    },
    /// `[tid, from_cpu, to_cpu]`.
    Migrate {
        /// Migrating thread.
        tid: u64,
        /// Source CPU.
        from_cpu: u64,
        /// Destination CPU.
        to_cpu: u64,
    },
    /// `[tid, pid]` — the thread became runnable.
    ThreadStart {
        /// New thread.
        tid: u64,
        /// Its process.
        pid: u64,
    },
    /// `[tid, pid]` — the thread finished.
    ThreadExit {
        /// Exiting thread.
        tid: u64,
        /// Its process.
        pid: u64,
    },
}

/// Decodes one `SCHED` event, or `None` for other majors, unknown minors,
/// and under-length payloads.
pub fn sched_event(e: &RawEvent) -> Option<SchedEv> {
    if e.major != MajorId::SCHED {
        return None;
    }
    let p = &e.payload;
    match e.minor {
        sched::CTX_SWITCH if p.len() >= 3 => Some(SchedEv::CtxSwitch {
            old_tid: p[0],
            new_tid: p[1],
            new_pid: p[2],
        }),
        sched::IDLE_START => Some(SchedEv::IdleStart),
        sched::IDLE_END if !p.is_empty() => Some(SchedEv::IdleEnd { idle_ns: p[0] }),
        sched::MIGRATE if p.len() >= 3 => Some(SchedEv::Migrate {
            tid: p[0],
            from_cpu: p[1],
            to_cpu: p[2],
        }),
        sched::THREAD_START if p.len() >= 2 => Some(SchedEv::ThreadStart {
            tid: p[0],
            pid: p[1],
        }),
        sched::THREAD_EXIT if p.len() >= 2 => Some(SchedEv::ThreadExit {
            tid: p[0],
            pid: p[1],
        }),
        _ => None,
    }
}

/// Walks `events`, yielding each alongside its decoded `LOCK` form; events
/// that are not well-formed lock events are skipped.
pub fn lock_events<'a, I>(events: I) -> impl Iterator<Item = (&'a RawEvent, LockEv)>
where
    I: IntoIterator<Item = &'a RawEvent>,
{
    events
        .into_iter()
        .filter_map(|e| lock_event(e).map(|d| (e, d)))
}

/// Walks `events`, yielding each alongside its decoded `SCHED` form; events
/// that are not well-formed scheduler events are skipped.
pub fn sched_events<'a, I>(events: I) -> impl Iterator<Item = (&'a RawEvent, SchedEv)>
where
    I: IntoIterator<Item = &'a RawEvent>,
{
    events
        .into_iter()
        .filter_map(|e| sched_event(e).map(|d| (e, d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(major: MajorId, minor: u16, payload: &[u64]) -> RawEvent {
        RawEvent {
            cpu: 0,
            seq: 0,
            offset: 0,
            time: 1,
            ts32: 1,
            major,
            minor,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn lock_triple_decodes() {
        assert_eq!(
            lock_event(&raw(MajorId::LOCK, lock::REQUEST, &[0xA, 7, 3])),
            Some(LockEv::Request {
                lock: 0xA,
                tid: 7,
                chain: 3
            })
        );
        assert_eq!(
            lock_event(&raw(MajorId::LOCK, lock::ACQUIRED, &[0xA, 7, 3, 5, 90])),
            Some(LockEv::Acquired {
                lock: 0xA,
                tid: 7,
                chain: 3,
                spins: 5,
                wait_ns: 90
            })
        );
        assert_eq!(
            lock_event(&raw(MajorId::LOCK, lock::RELEASED, &[0xA, 7, 40])),
            Some(LockEv::Released {
                lock: 0xA,
                tid: 7,
                hold_ns: 40
            })
        );
    }

    #[test]
    fn short_or_foreign_events_do_not_decode() {
        assert_eq!(
            lock_event(&raw(MajorId::LOCK, lock::ACQUIRED, &[1, 2])),
            None
        );
        assert_eq!(
            lock_event(&raw(MajorId::SCHED, lock::REQUEST, &[1, 2, 3])),
            None
        );
        assert_eq!(lock_event(&raw(MajorId::LOCK, 99, &[1, 2, 3])), None);
        assert_eq!(
            sched_event(&raw(MajorId::SCHED, sched::CTX_SWITCH, &[1])),
            None
        );
        assert_eq!(
            sched_event(&raw(MajorId::LOCK, sched::IDLE_START, &[])),
            None
        );
    }

    #[test]
    fn sched_vocabulary_decodes() {
        assert_eq!(
            sched_event(&raw(MajorId::SCHED, sched::CTX_SWITCH, &[1, 2, 9])),
            Some(SchedEv::CtxSwitch {
                old_tid: 1,
                new_tid: 2,
                new_pid: 9
            })
        );
        assert_eq!(
            sched_event(&raw(MajorId::SCHED, sched::IDLE_START, &[])),
            Some(SchedEv::IdleStart)
        );
        assert_eq!(
            sched_event(&raw(MajorId::SCHED, sched::THREAD_START, &[8, 4])),
            Some(SchedEv::ThreadStart { tid: 8, pid: 4 })
        );
    }

    #[test]
    fn walkers_skip_malformed() {
        let evs = vec![
            raw(MajorId::LOCK, lock::REQUEST, &[1, 2, 3]),
            raw(MajorId::LOCK, lock::ACQUIRED, &[1]), // short: skipped
            raw(MajorId::TEST, 1, &[]),
            raw(MajorId::LOCK, lock::RELEASED, &[1, 2, 3]),
        ];
        let decoded: Vec<LockEv> = lock_events(&evs).map(|(_, d)| d).collect();
        assert_eq!(decoded.len(), 2);
        assert!(matches!(decoded[0], LockEv::Request { .. }));
        assert!(matches!(decoded[1], LockEv::Released { .. }));
    }
}
