//! Property: no byte-level corruption of a valid trace file can panic the
//! salvage reader. It must always return — with recovered events, a typed
//! damage report, or both — never unwrap, index out of bounds, or OOM.

use ktrace_clock::ManualClock;
use ktrace_core::{TraceConfig, TraceLogger};
use ktrace_faults::FileCorruptor;
use ktrace_format::{EventRegistry, MajorId};
use ktrace_io::{salvage_bytes, FileHeader, TraceFileWriter};
use proptest::prelude::*;
use std::sync::Arc;

/// A small but structurally complete trace image: 2 CPUs, several records,
/// anchors, fillers, and a registry in the header.
fn valid_trace(events_per_cpu: u64) -> Vec<u8> {
    let cfg = TraceConfig::small();
    let logger = TraceLogger::builder()
        .geometry(cfg)
        .clock(Arc::new(ManualClock::new(1, 1)))
        .ncpus(2)
        .build()
        .unwrap();
    let header = FileHeader {
        ncpus: 2,
        buffer_words: cfg.buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: EventRegistry::with_builtin(),
    };
    let mut w = TraceFileWriter::new(Vec::new(), &header).unwrap();
    for i in 0..events_per_cpu {
        for cpu in 0..2 {
            assert!(logger.handle(cpu).unwrap().log2(
                MajorId::TEST,
                cpu as u16,
                i,
                i.wrapping_mul(31)
            ));
            if let Some(b) = logger.take_buffer(cpu) {
                w.write_buffer(&b).unwrap();
            }
        }
    }
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    w.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seed-driven mutations from the fault harness's own corruptor:
    /// truncation, byte flips, zeroed spans, several in sequence.
    #[test]
    fn corruptor_mutations_never_panic_salvage(
        seed in any::<u64>(),
        events in 1u64..300,
        rounds in 1usize..4,
    ) {
        let mut bytes = valid_trace(events);
        let total = salvage_bytes(&bytes).events.len();
        let mut corruptor = FileCorruptor::new(seed);
        for _ in 0..rounds {
            corruptor.mutate(&mut bytes);
        }
        let report = salvage_bytes(&bytes);
        // Salvage never invents events out of damage.
        prop_assert!(report.events.len() <= total);
        // The report's accounting is internally consistent.
        prop_assert_eq!(
            report.events.len(),
            report.records.iter().map(|r| r.events).sum::<usize>()
        );
        prop_assert!(report.skipped_bytes + report.trailing_bytes <= report.file_bytes);
    }

    /// Raw random overwrites at arbitrary offsets, bypassing the corruptor:
    /// the reader must cope with any byte soup that still starts life as a
    /// trace file.
    #[test]
    fn arbitrary_overwrites_never_panic_salvage(
        events in 1u64..200,
        patches in prop::collection::vec((any::<u32>(), prop::collection::vec(any::<u8>(), 1..64)), 1..8),
    ) {
        let mut bytes = valid_trace(events);
        for (at, patch) in &patches {
            if bytes.is_empty() {
                break;
            }
            let at = *at as usize % bytes.len();
            let end = (at + patch.len()).min(bytes.len());
            bytes[at..end].copy_from_slice(&patch[..end - at]);
        }
        let report = salvage_bytes(&bytes);
        prop_assert!(report.file_bytes == bytes.len());
        // Every surviving event still carries a CPU the header declares
        // (when the header survived at all).
        if let Some(h) = &report.header {
            prop_assert!(report.events.iter().all(|e| (e.cpu as u32) < h.ncpus));
        }
    }

    /// Pure noise — not even a valid prefix — must yield an empty, typed
    /// report rather than a crash.
    #[test]
    fn random_garbage_never_panics_salvage(
        noise in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let report = salvage_bytes(&noise);
        prop_assert_eq!(report.file_bytes, noise.len());
        if !report.header_ok {
            prop_assert!(report.events.is_empty());
        }
    }
}
