//! In-region and at-rest corruption injectors.

use ktrace_core::TraceLogger;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Drives the fault hooks on a live [`TraceLogger`]: the in-memory leg of
/// the fault matrix. Every choice (offsets, masks, deltas) is drawn from a
/// seeded generator.
#[derive(Debug)]
pub struct RegionCorruptor {
    rng: StdRng,
}

impl RegionCorruptor {
    /// A corruptor whose decisions are a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        RegionCorruptor {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Claims a random-sized reservation on `cpu` and abandons it — the
    /// killed-mid-log scenario (§3.1). Returns the torn extent's start index
    /// and word count, or `None` if the region refused the reservation.
    pub fn abandon_reservation(
        &mut self,
        logger: &TraceLogger,
        cpu: usize,
    ) -> Option<(u64, usize)> {
        let max = logger.config().max_event_words();
        let words = self.rng.gen_range(1..=max.min(16));
        logger
            .fault_abandon_reservation(cpu, words)
            .map(|at| (at, words))
    }

    /// XORs a random non-zero mask into a random live word of `cpu`'s current
    /// buffer — a torn header or flipped payload. Returns `(offset, mask)`,
    /// or `None` if nothing has been logged yet.
    pub fn flip_word(&mut self, logger: &TraceLogger, cpu: usize) -> Option<(u64, u64)> {
        let snap = logger.snapshot(cpu);
        if snap.index == 0 {
            return None;
        }
        let bw = snap.buffer_words as u64;
        let lo = (snap.index / bw) * bw; // current buffer's base
        let at = self.rng.gen_range(lo..snap.index.max(lo + 1));
        let mask = self.rng.next_u64() | 1;
        logger.fault_corrupt_word(cpu, at, mask);
        Some((at, mask))
    }

    /// Skews the commit count of `cpu`'s current buffer slot by a random
    /// non-zero delta in `[-8, 8]`. Returns `(slot, delta)`.
    pub fn desync_commit(&mut self, logger: &TraceLogger, cpu: usize) -> (usize, i64) {
        let cfg = logger.config();
        let snap = logger.snapshot(cpu);
        let slot = ((snap.index / cfg.buffer_words as u64) % cfg.buffers_per_cpu as u64) as usize;
        let mut delta = 0i64;
        while delta == 0 {
            delta = self.rng.gen_range(-8i64..=8);
        }
        logger.fault_desync_commit(cpu, slot, delta);
        (slot, delta)
    }
}

/// What [`FileCorruptor::mutate`] did to the byte image, for test logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMutation {
    /// The tail was cut at the given length.
    Truncated(usize),
    /// `count` bytes were XOR-flipped starting near `offset`.
    FlippedBytes {
        /// First affected byte.
        offset: usize,
        /// How many bytes were flipped.
        count: usize,
    },
    /// A span was zeroed.
    ZeroedSpan {
        /// First zeroed byte.
        offset: usize,
        /// Span length.
        len: usize,
    },
}

/// Byte-level corruption of an encoded trace file: the at-rest leg of the
/// fault matrix and the input generator for the salvage proptest. Knows
/// nothing about the format — that is the point.
#[derive(Debug)]
pub struct FileCorruptor {
    rng: StdRng,
}

impl FileCorruptor {
    /// A corruptor whose mutations are a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        FileCorruptor {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Cuts the image at a random length (possibly to zero): the short-read
    /// plan. Returns the new length.
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) -> usize {
        let keep = if bytes.is_empty() {
            0
        } else {
            self.rng.gen_range(0..bytes.len())
        };
        bytes.truncate(keep);
        keep
    }

    /// XOR-flips up to `count` random bytes anywhere in the image.
    pub fn flip_bytes(&mut self, bytes: &mut [u8], count: usize) -> Option<FileMutation> {
        if bytes.is_empty() {
            return None;
        }
        let mut first = bytes.len();
        for _ in 0..count {
            let at = self.rng.gen_range(0..bytes.len());
            let mask = (self.rng.next_u64() as u8) | 1;
            bytes[at] ^= mask;
            first = first.min(at);
        }
        Some(FileMutation::FlippedBytes {
            offset: first,
            count,
        })
    }

    /// Zeroes a random span of the image.
    pub fn zero_span(&mut self, bytes: &mut [u8]) -> Option<FileMutation> {
        if bytes.is_empty() {
            return None;
        }
        let offset = self.rng.gen_range(0..bytes.len());
        let len = self.rng.gen_range(1..=(bytes.len() - offset).min(256));
        bytes[offset..offset + len].fill(0);
        Some(FileMutation::ZeroedSpan { offset, len })
    }

    /// Applies one randomly chosen mutation and reports what it did.
    pub fn mutate(&mut self, bytes: &mut Vec<u8>) -> Option<FileMutation> {
        match self.rng.gen_range(0u32..3) {
            0 => {
                let keep = self.truncate(bytes);
                Some(FileMutation::Truncated(keep))
            }
            1 => {
                let n = self.rng.gen_range(1usize..=16);
                self.flip_bytes(bytes, n)
            }
            _ => self.zero_span(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_clock::ManualClock;
    use ktrace_core::{parse_buffer, GarbleNote, TraceConfig, TraceLogger};
    use ktrace_format::MajorId;
    use std::sync::Arc;

    fn logger() -> TraceLogger {
        TraceLogger::builder()
            .geometry(TraceConfig::small())
            .clock(Arc::new(ManualClock::new(1, 1)))
            .ncpus(1)
            .build()
            .unwrap()
    }

    #[test]
    fn abandon_leaves_detectable_hole() {
        let l = logger();
        let h = l.handle(0).unwrap();
        h.log1(MajorId::TEST, 0, 1);
        let mut c = RegionCorruptor::new(11);
        let (at, words) = c.abandon_reservation(&l, 0).expect("reserved");
        assert!(words >= 1);
        l.flush_cpu(0);
        let buf = l.take_buffer(0).unwrap();
        assert!(!buf.complete);
        assert_eq!(buf.expected_words - buf.committed_words, words as u64);
        let parsed = parse_buffer(0, buf.seq, &buf.words, None);
        assert!(parsed
            .notes
            .iter()
            .any(|n| matches!(n, GarbleNote::ZeroHeader { offset } if *offset as u64 == at)));
    }

    #[test]
    fn flip_word_changes_exactly_one_word() {
        let l = logger();
        let h = l.handle(0).unwrap();
        for i in 0..8 {
            h.log1(MajorId::TEST, 0, i);
        }
        let before = l.snapshot(0).words;
        let mut c = RegionCorruptor::new(21);
        let (at, mask) = c.flip_word(&l, 0).expect("live words exist");
        let after = l.snapshot(0).words;
        let changed: Vec<usize> = (0..before.len())
            .filter(|&i| before[i] != after[i])
            .collect();
        assert_eq!(changed, vec![at as usize % before.len()]);
        assert_eq!(before[changed[0]] ^ mask, after[changed[0]]);
    }

    #[test]
    fn desync_flags_current_buffer() {
        let l = logger();
        let h = l.handle(0).unwrap();
        h.log1(MajorId::TEST, 0, 1);
        let mut c = RegionCorruptor::new(31);
        let (_slot, delta) = c.desync_commit(&l, 0);
        assert_ne!(delta, 0);
        l.flush_cpu(0);
        let buf = l.take_buffer(0).unwrap();
        assert!(!buf.complete, "skewed count must flag garble");
    }

    #[test]
    fn corruptors_are_deterministic_per_seed() {
        let run = |seed| {
            let mut img = (0u32..512).map(|i| i as u8).collect::<Vec<u8>>();
            let mut c = FileCorruptor::new(seed);
            let muts: Vec<_> = (0..4).map(|_| c.mutate(&mut img)).collect();
            (img, muts)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }

    #[test]
    fn file_corruptor_handles_degenerate_images() {
        let mut c = FileCorruptor::new(1);
        let mut empty = Vec::new();
        assert_eq!(c.truncate(&mut empty), 0);
        assert!(c.flip_bytes(&mut empty, 4).is_none());
        assert!(c.zero_span(&mut empty).is_none());
        let mut tiny = vec![0xffu8];
        for _ in 0..16 {
            c.mutate(&mut tiny);
        }
    }
}
