//! Deterministic fault injection for the ktrace collection pipeline.
//!
//! The paper's reliability machinery — per-buffer commit counts (§3.1),
//! alignment-point filler events (§3.2), and the flight-recorder dump taken
//! after a crash (§4.2) — exists so a trace *survives* a misbehaving system.
//! This crate manufactures the misbehaviour, reproducibly: every injector is
//! a pure function of a `u64` seed, so a failing fault-matrix run is re-run
//! with the printed seed and fails the same way.
//!
//! Three injection points cover the pipeline end to end:
//!
//! * [`FaultySink`] wraps any [`std::io::Write`] sink and injects partial
//!   writes, transient (`WouldBlock`) errors, a permanent failure after a
//!   byte budget, and latency spikes — the flaky-disk / flaky-network leg.
//! * [`RegionCorruptor`] drives the fault hooks on a live
//!   [`TraceLogger`](ktrace_core::TraceLogger): abandoned reservations (a
//!   logger killed mid-`traceReserve`), torn header words, and commit-count
//!   desyncs — the in-memory leg.
//! * [`FileCorruptor`] mutates an encoded trace file at the byte level —
//!   truncation, bit flips, zeroed spans — the at-rest leg, and the input
//!   generator for the salvage proptest.
//!
//! The consuming side that tolerates all of this lives in `ktrace-io`
//! (`salvage` module, resilient `TraceSession`); this crate only breaks
//! things.

pub mod corrupt;
pub mod plan;
pub mod sink;

pub use corrupt::{FileCorruptor, RegionCorruptor};
pub use plan::{FaultPlan, SinkPlan};
pub use sink::{FaultySink, SinkStats, SinkStatsHandle};
