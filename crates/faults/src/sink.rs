//! A `Write` wrapper that misbehaves on a reproducible schedule.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::SinkPlan;

/// Counters shared between a [`FaultySink`] and the test observing it.
///
/// The sink is usually moved into a `TraceSession`'s drainer thread, so the
/// counters live behind an [`Arc`] ([`SinkStatsHandle`]) and are updated
/// atomically.
#[derive(Debug, Default)]
pub struct SinkStats {
    /// `write` calls observed.
    pub writes: AtomicU64,
    /// Bytes actually accepted into the inner sink.
    pub bytes_accepted: AtomicU64,
    /// Writes that accepted only a prefix.
    pub partial_writes: AtomicU64,
    /// Injected retryable (`WouldBlock`) errors.
    pub transient_errors: AtomicU64,
    /// Writes rejected after the permanent failure tripped.
    pub permanent_failures: AtomicU64,
    /// Injected latency stalls.
    pub latency_spikes: AtomicU64,
}

/// A cloneable view of a sink's [`SinkStats`].
pub type SinkStatsHandle = Arc<SinkStats>;

impl SinkStats {
    /// True once the permanent failure has tripped at least once.
    pub fn sink_died(&self) -> bool {
        self.permanent_failures.load(Ordering::Relaxed) > 0
    }

    /// True if any fault (of any kind) fired.
    pub fn any_fault(&self) -> bool {
        self.partial_writes.load(Ordering::Relaxed) > 0
            || self.transient_errors.load(Ordering::Relaxed) > 0
            || self.permanent_failures.load(Ordering::Relaxed) > 0
            || self.latency_spikes.load(Ordering::Relaxed) > 0
    }
}

/// Wraps any [`Write`] sink and injects the faults described by a
/// [`SinkPlan`]: partial writes, transient `WouldBlock` errors, a permanent
/// `BrokenPipe` failure after a byte budget, and latency spikes.
///
/// Determinism: every decision comes from a generator seeded with
/// `plan.seed`, advanced once per decision point, so two sinks fed the same
/// byte stream under the same plan fail identically.
#[derive(Debug)]
pub struct FaultySink<W> {
    inner: W,
    plan: SinkPlan,
    rng: StdRng,
    dead: bool,
    stats: SinkStatsHandle,
}

impl<W: Write> FaultySink<W> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: W, plan: SinkPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultySink {
            inner,
            plan,
            rng,
            dead: false,
            stats: Arc::new(SinkStats::default()),
        }
    }

    /// A handle to the fault counters, alive after the sink moves away.
    pub fn stats(&self) -> SinkStatsHandle {
        Arc::clone(&self.stats)
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn accepted(&self, n: usize) {
        self.stats
            .bytes_accepted
            .fetch_add(n as u64, Ordering::Relaxed);
    }
}

impl<W: Write> Write for FaultySink<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);

        let so_far = self.stats.bytes_accepted.load(Ordering::Relaxed);
        if self.plan.latency > 0.0
            && so_far >= self.plan.latency_after
            && self.rng.gen_bool(self.plan.latency)
        {
            self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.plan.delay);
        }

        if self.dead || self.plan.permanent_after.is_some_and(|cap| so_far >= cap) {
            self.dead = true;
            self.stats
                .permanent_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected permanent sink failure",
            ));
        }

        if self.plan.transient_error > 0.0 && self.rng.gen_bool(self.plan.transient_error) {
            self.stats.transient_errors.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "injected transient sink error",
            ));
        }

        let mut take = buf.len();
        if buf.len() > 1
            && self.plan.partial_write > 0.0
            && self.rng.gen_bool(self.plan.partial_write)
        {
            take = self.rng.gen_range(1..buf.len());
            self.stats.partial_writes.fetch_add(1, Ordering::Relaxed);
        }
        // Cap at the permanent budget so the failure trips at an exact byte
        // offset — mid-record, if the plan says so.
        if let Some(cap) = self.plan.permanent_after {
            take = take.min((cap - so_far) as usize).max(1);
        }
        let n = self.inner.write(&buf[..take])?;
        self.accepted(n);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected permanent sink failure",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SinkPlan;
    use std::time::Duration;

    fn drive(plan: SinkPlan, chunks: usize) -> (Vec<u8>, SinkStatsHandle, Vec<String>) {
        let mut sink = FaultySink::new(Vec::new(), plan);
        let stats = sink.stats();
        let mut errors = Vec::new();
        for i in 0..chunks {
            let chunk = [i as u8; 64];
            let mut rest = &chunk[..];
            while !rest.is_empty() {
                match sink.write(rest) {
                    Ok(n) => rest = &rest[n..],
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                    Err(e) => {
                        errors.push(e.to_string());
                        break;
                    }
                }
            }
        }
        (sink.into_inner(), stats, errors)
    }

    #[test]
    fn clean_plan_is_identity() {
        let (out, stats, errors) = drive(SinkPlan::clean(1), 8);
        assert_eq!(out.len(), 8 * 64);
        assert!(errors.is_empty());
        assert!(!stats.any_fault());
    }

    #[test]
    fn same_seed_same_faults() {
        let (a, sa, _) = drive(SinkPlan::flaky(42), 32);
        let (b, sb, _) = drive(SinkPlan::flaky(42), 32);
        assert_eq!(a, b);
        assert_eq!(
            sa.partial_writes.load(Ordering::Relaxed),
            sb.partial_writes.load(Ordering::Relaxed)
        );
        assert_eq!(
            sa.transient_errors.load(Ordering::Relaxed),
            sb.transient_errors.load(Ordering::Relaxed)
        );
        let (c, _, _) = drive(SinkPlan::flaky(43), 32);
        assert_ne!(
            sa.writes.load(Ordering::Relaxed),
            0,
            "sanity: the sink saw traffic"
        );
        // A different seed faults differently (the data still arrives in
        // order because the driver retries, so compare fault counts).
        assert_eq!(a, c, "retried data is identical regardless of faults");
    }

    #[test]
    fn partial_writes_still_deliver_everything() {
        let (out, stats, errors) = drive(SinkPlan::partial_writes(7), 16);
        assert!(errors.is_empty());
        assert_eq!(out.len(), 16 * 64, "write-loop completes despite shorts");
        assert!(stats.partial_writes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn transient_errors_are_retryable() {
        let (out, stats, errors) = drive(SinkPlan::transient_errors(5), 16);
        assert!(errors.is_empty());
        assert_eq!(out.len(), 16 * 64);
        assert!(stats.transient_errors.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn permanent_failure_trips_at_exact_byte() {
        let (out, stats, errors) = drive(SinkPlan::permanent_failure(3, 100), 16);
        assert_eq!(out.len(), 100, "budget honoured to the byte");
        assert!(stats.sink_died());
        assert!(!errors.is_empty());
        // Once dead, always dead.
        let plan = SinkPlan::permanent_failure(3, 0);
        let mut sink = FaultySink::new(Vec::new(), plan);
        assert!(sink.write(b"x").is_err());
        assert!(sink.write(b"x").is_err());
        assert!(sink.flush().is_err());
    }

    #[test]
    fn degrading_latency_arms_at_the_byte_budget() {
        // 4 chunks of 64 bytes fit the 256-byte healthy budget; the rest
        // stall on every write.
        let plan = SinkPlan::degrading_latency(11, 256, Duration::from_micros(1));
        let (out, stats, errors) = drive(plan, 8);
        assert!(errors.is_empty());
        assert_eq!(out.len(), 8 * 64, "latency loses nothing");
        assert_eq!(stats.latency_spikes.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn latency_only_plan_loses_nothing() {
        let plan = SinkPlan::latency_only(9, Duration::from_micros(10));
        let (out, stats, errors) = drive(plan, 8);
        assert!(errors.is_empty());
        assert_eq!(out.len(), 8 * 64);
        assert!(stats.latency_spikes.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.partial_writes.load(Ordering::Relaxed), 0);
        assert_eq!(stats.transient_errors.load(Ordering::Relaxed), 0);
    }
}
