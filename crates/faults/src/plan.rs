//! Fault taxonomy and per-sink injection plans.

use std::time::Duration;

/// One row of the fault matrix: which failure mode a test run injects.
///
/// Each variant maps to a concrete injector: the sink faults go through
/// [`FaultySink`](crate::FaultySink), the in-region faults through
/// [`RegionCorruptor`](crate::RegionCorruptor), and `ShortRead` through
/// [`FileCorruptor`](crate::FileCorruptor) truncation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPlan {
    /// The sink accepts only a prefix of each write (`FaultySink`).
    PartialWrite,
    /// The trace file is cut short at an arbitrary byte (`FileCorruptor`).
    ShortRead,
    /// A reservation is claimed and never written: a zeroed hole mid-buffer
    /// (`RegionCorruptor::abandon_reservation`).
    MidBufferTruncation,
    /// A buffer's cumulative commit count is skewed
    /// (`RegionCorruptor::desync_commit`).
    CommitDesync,
    /// A simulated CPU dies mid-reservation (ossim `CrashPlan`), leaving the
    /// flight recorder holding a torn tail.
    CpuCrash,
}

impl FaultPlan {
    /// Every plan, in matrix order.
    pub const ALL: [FaultPlan; 5] = [
        FaultPlan::PartialWrite,
        FaultPlan::ShortRead,
        FaultPlan::MidBufferTruncation,
        FaultPlan::CommitDesync,
        FaultPlan::CpuCrash,
    ];

    /// Stable name used in test output and seed-reproduction logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPlan::PartialWrite => "partial-write",
            FaultPlan::ShortRead => "short-read",
            FaultPlan::MidBufferTruncation => "mid-buffer-truncation",
            FaultPlan::CommitDesync => "commit-count-desync",
            FaultPlan::CpuCrash => "cpu-crash",
        }
    }
}

/// How a [`FaultySink`](crate::FaultySink) misbehaves.
///
/// All probabilities are per `write` call and drawn from a generator seeded
/// with `seed`, so a plan's behaviour is a pure function of the byte stream
/// written into it.
#[derive(Debug, Clone)]
pub struct SinkPlan {
    /// Seed for every probabilistic decision below.
    pub seed: u64,
    /// Probability a write accepts only a random non-empty prefix.
    pub partial_write: f64,
    /// Probability a write fails with [`std::io::ErrorKind::WouldBlock`]
    /// (retryable; the resilient session backs off and retries).
    pub transient_error: f64,
    /// After this many bytes have been accepted, every further write fails
    /// with [`std::io::ErrorKind::BrokenPipe`], permanently.
    pub permanent_after: Option<u64>,
    /// Probability a write stalls for [`delay`](Self::delay) first.
    pub latency: f64,
    /// Length of an injected stall.
    pub delay: Duration,
    /// Accepted bytes before latency injection arms (0 = immediately).
    /// Lets a run establish a healthy baseline, then degrade — the shape
    /// an anomaly detector watching rate *changes* actually sees in the
    /// field.
    pub latency_after: u64,
}

impl SinkPlan {
    /// A plan that injects nothing; the identity wrapper.
    pub fn clean(seed: u64) -> Self {
        SinkPlan {
            seed,
            partial_write: 0.0,
            transient_error: 0.0,
            permanent_after: None,
            latency: 0.0,
            delay: Duration::ZERO,
            latency_after: 0,
        }
    }

    /// Benign: latency spikes only, no data loss or errors. The plan the
    /// network-stream test uses — the receiver must still reconstruct the
    /// trace byte-for-byte.
    pub fn latency_only(seed: u64, delay: Duration) -> Self {
        SinkPlan {
            latency: 0.3,
            delay,
            ..SinkPlan::clean(seed)
        }
    }

    /// A sink that is healthy for its first `after_bytes` accepted bytes,
    /// then stalls on **every** write: the quiet-baseline-then-overload
    /// shape the adaptive control plane's closed loop is tested against.
    pub fn degrading_latency(seed: u64, after_bytes: u64, delay: Duration) -> Self {
        SinkPlan {
            latency: 1.0,
            delay,
            latency_after: after_bytes,
            ..SinkPlan::clean(seed)
        }
    }

    /// Short writes on roughly half the calls.
    pub fn partial_writes(seed: u64) -> Self {
        SinkPlan {
            partial_write: 0.5,
            ..SinkPlan::clean(seed)
        }
    }

    /// Retryable `WouldBlock` errors on roughly a third of the calls.
    pub fn transient_errors(seed: u64) -> Self {
        SinkPlan {
            transient_error: 0.33,
            ..SinkPlan::clean(seed)
        }
    }

    /// The sink dies for good after `after_bytes` accepted bytes.
    pub fn permanent_failure(seed: u64, after_bytes: u64) -> Self {
        SinkPlan {
            permanent_after: Some(after_bytes),
            ..SinkPlan::clean(seed)
        }
    }

    /// Everything at once: the flaky-network soak plan.
    pub fn flaky(seed: u64) -> Self {
        SinkPlan {
            partial_write: 0.3,
            transient_error: 0.2,
            latency: 0.1,
            delay: Duration::from_micros(50),
            ..SinkPlan::clean(seed)
        }
    }
}
