//! The HTTP scrape endpoint: just enough HTTP/1.0 for a Prometheus scraper
//! or `curl`, hand-rolled like the rest of the workspace's exposition (no
//! HTTP dependency, no keep-alive, one request per connection).
//!
//! * `GET /metrics` — the fleet exposition ([`crate::health`]).
//! * `GET /nodes` — live per-node ingest accounting as JSON.
//! * `GET /anomalies` — per-node anomaly-detector state as JSON (each
//!   request steps the detectors one interval).

use crate::collector::Shared;
use crate::health;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn respond(conn: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        conn,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.flush();
}

fn serve_one(mut conn: TcpStream, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    let mut line = String::new();
    if BufReader::new(&conn).read_line(&mut line).is_err() {
        return;
    }
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(
            &mut conn,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
        return;
    }
    match path {
        "/metrics" => {
            shared.stats.scrapes_served.fetch_add(1, Ordering::Relaxed);
            let body = health::render_fleet_metrics(shared);
            respond(&mut conn, "200 OK", "text/plain; version=0.0.4", &body);
        }
        "/nodes" => {
            let body = health::render_nodes_json(shared);
            respond(&mut conn, "200 OK", "application/json", &body);
        }
        "/anomalies" => {
            let body = health::render_anomalies_json(shared);
            respond(&mut conn, "200 OK", "application/json", &body);
        }
        _ => respond(
            &mut conn,
            "404 Not Found",
            "text/plain",
            "try /metrics, /nodes, or /anomalies\n",
        ),
    }
}

/// The scrape accept loop: single-threaded (scrapes are rare and cheap),
/// nonblocking so shutdown is prompt.
pub(crate) fn scrape_loop(listener: TcpListener, shared: &Shared) {
    let _ = listener.set_nonblocking(true);
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                let _ = conn.set_nonblocking(false);
                serve_one(conn, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Fetches `path` from a scrape endpoint and returns the response body —
/// the client half of the protocol, used by the CLI and tests.
pub fn fetch(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    use std::io::Read as _;
    let mut conn = TcpStream::connect(addr)?;
    write!(conn, "GET {path} HTTP/1.0\r\nHost: collectd\r\n\r\n")?;
    conn.flush()?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_headers, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}
