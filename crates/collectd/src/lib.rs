//! `ktrace-collectd` — fleet-scale trace aggregation.
//!
//! The paper's infrastructure monitors one machine; a deployment monitors a
//! fleet. This crate is the aggregation half: a TCP service that accepts
//! many concurrent trace streams (each an ossim "node"), lands them in a
//! shared on-disk store, and exposes fleet health — built entirely from the
//! workspace's existing pieces, because **the wire format is the file
//! format**:
//!
//! * [`proto`] — the wire protocol: an 8-byte hello frame naming the node,
//!   then the unmodified trace byte stream a [`TraceSession`] already
//!   produces (`ktrace-io` header + fixed-size records).
//! * [`collector`] — the service: per-connection reader threads feeding
//!   per-shard store workers over **bounded** queues. Backpressure degrades
//!   to counted drops, never to a wedged producer — the same philosophy as
//!   the session drainer (`ktrace-io::session`).
//! * [`store`] — the rolling sharded store: each node's stream lands as a
//!   sequence of valid trace files (`<store>/<node>/shard-NNNN.ktrace`),
//!   every record at a computable offset (§3.2 alignment-point random
//!   access survives aggregation).
//! * [`health`] — per-node health reconstructed from the `CONTROL`/
//!   `HEARTBEAT` events in the streams themselves, rendered with
//!   `ktrace-telemetry`'s Prometheus exposition.
//! * [`scrape`] — the HTTP scrape endpoint (`/metrics`, `/nodes`,
//!   `/anomalies`) serving per-node heartbeat-derived health — including
//!   each node's `ktrace-adapt` anomaly-detector state — plus the
//!   collector's own counters.
//! * [`source`] — [`CollectSource`]: a `ktrace-query` [`TraceSource`] over
//!   the store, so `props/ktrace.toml` assertions run unchanged against
//!   fleet data, per node or fleet-wide merged.
//! * [`node`] — the client half: speak the hello, then hand the socket to a
//!   session as its sink; plus a driver running an ossim [`NodeSpec`] as a
//!   live node.
//!
//! Exit codes for collector operations live on the shared table
//! ([`exit::COLLECT_BIND`], [`exit::COLLECT_STORE`], [`exit::COLLECT_LOSSY`]).
//!
//! [`TraceSession`]: ktrace_io::TraceSession
//! [`TraceSource`]: ktrace_query::TraceSource
//! [`NodeSpec`]: ktrace_ossim::NodeSpec
//!
//! # Example
//!
//! ```no_run
//! use ktrace_collectd::{node, Collector, CollectorConfig};
//! use ktrace_io::TraceSession;
//!
//! let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new("/tmp/fleet")).unwrap();
//! let sink = node::connect(collector.local_addr(), "web-3").unwrap();
//! let session = TraceSession::builder().ncpus(2).start(sink).unwrap();
//! // … trace through session.logger() …
//! session.finish();
//! let summary = collector.shutdown();
//! assert!(summary.reconciled());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod health;
pub mod node;
pub mod proto;
pub mod scrape;
pub mod source;
pub mod store;

pub use collector::{CollectError, Collector, CollectorConfig, FleetSummary, NodeSummary};
pub use ktrace_format::exit;
pub use node::{NodeError, NodeReport};
pub use source::CollectSource;
