//! Fleet health, reconstructed from the streams themselves.
//!
//! Each node's session periodically logs `CONTROL`/`HEARTBEAT` events whose
//! payload is a snapshot of the node's own telemetry
//! ([`control::HEARTBEAT_METRICS`]). The collector captures the latest beat
//! per `(node, cpu)` as records arrive, so fleet health needs no side
//! channel: a node's scrape rows are decoded back out of its trace stream
//! and rendered with the same `ktrace-telemetry` exposition the node itself
//! would serve, just with a `node` label in front.

use crate::collector::Shared;
use ktrace_format::ids::control;
use ktrace_telemetry::snapshot::{CpuTelemetry, SinkTelemetry, TelemetrySnapshot};
use ktrace_telemetry::to_prometheus_labeled;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Rebuilds a [`TelemetrySnapshot`] from the latest heartbeat payload of
/// each CPU. Per-CPU counters map index-for-index from
/// [`control::HEARTBEAT_METRICS`]; the sink counters (which every CPU's
/// beat reports identically-or-staler) take the maximum across beats.
/// Histograms are not carried by heartbeats and come back empty.
pub fn snapshot_from_beats(beats: &[[u64; control::HEARTBEAT_WORDS]]) -> TelemetrySnapshot {
    let field = |name: &str| -> usize {
        control::HEARTBEAT_METRICS
            .iter()
            .position(|m| *m == name)
            .expect("heartbeat metric name")
            + 1
    };
    let per_cpu = beats
        .iter()
        .map(|b| CpuTelemetry {
            cpu: b[0] as usize,
            events_logged: b[field("events_logged")],
            events_masked: b[field("events_masked")],
            events_dropped: b[field("events_dropped")],
            cas_retries: b[field("cas_retries")],
            filler_words: b[field("filler_words")],
            buffer_wraps: b[field("buffer_wraps")],
            flight_overwrites: b[field("flight_overwrites")],
            ..CpuTelemetry::default()
        })
        .collect();
    let max_of = |name: &str| -> u64 { beats.iter().map(|b| b[field(name)]).max().unwrap_or(0) };
    TelemetrySnapshot {
        per_cpu,
        sink: SinkTelemetry {
            records_written: max_of("sink_records_written"),
            buffers_dropped: max_of("sink_buffers_dropped"),
            ..SinkTelemetry::default()
        },
        salvage: Default::default(),
    }
}

fn counter(out: &mut String, name: &str, help: &str, rows: &[(String, u64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (labels, v) in rows {
        let _ = writeln!(out, "{name}{{{labels}}} {v}");
    }
}

/// Renders the whole scrape body: collector self-metrics, per-node ingest
/// accounting, then each node's heartbeat-derived telemetry under a `node`
/// label.
pub(crate) fn render_fleet_metrics(shared: &Shared) -> String {
    let mut out = String::new();
    let self_row = |name: &str, help: &str, v: u64| -> String {
        format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n")
    };
    out.push_str(&self_row(
        "ktrace_collectd_connections_accepted_total",
        "Connections accepted by the collector.",
        shared.stats.connections_accepted.load(Ordering::Relaxed),
    ));
    out.push_str(&self_row(
        "ktrace_collectd_connections_rejected_total",
        "Connections dropped before a valid hello and header.",
        shared.stats.connections_rejected.load(Ordering::Relaxed),
    ));
    out.push_str(&self_row(
        "ktrace_collectd_scrapes_served_total",
        "Scrape requests served.",
        shared.stats.scrapes_served.load(Ordering::Relaxed),
    ));

    let nodes = shared.node_states();
    out.push_str("# HELP ktrace_collectd_nodes Nodes that have connected.\n");
    out.push_str("# TYPE ktrace_collectd_nodes gauge\n");
    let _ = writeln!(out, "ktrace_collectd_nodes {}", nodes.len());

    let rows = |f: &dyn Fn(&crate::collector::NodeSummary) -> Vec<(String, u64)>| {
        nodes
            .iter()
            .flat_map(|n| f(&n.summary()))
            .collect::<Vec<_>>()
    };
    counter(
        &mut out,
        "ktrace_collectd_records_total",
        "Records by ingest outcome; stored + dropped == received.",
        &rows(&|s| {
            vec![
                (
                    format!("node=\"{}\",outcome=\"stored\"", s.name),
                    s.records_stored,
                ),
                (
                    format!("node=\"{}\",outcome=\"dropped\"", s.name),
                    s.records_dropped,
                ),
                (
                    format!("node=\"{}\",outcome=\"garbled\"", s.name),
                    s.records_garbled,
                ),
            ]
        }),
    );
    counter(
        &mut out,
        "ktrace_collectd_events_total",
        "Data events by ingest outcome; stored + dropped == received.",
        &rows(&|s| {
            vec![
                (
                    format!("node=\"{}\",outcome=\"stored\"", s.name),
                    s.events_stored,
                ),
                (
                    format!("node=\"{}\",outcome=\"dropped\"", s.name),
                    s.events_dropped,
                ),
            ]
        }),
    );
    counter(
        &mut out,
        "ktrace_collectd_bytes_received_total",
        "Record bytes received per node.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.bytes_received)]),
    );
    counter(
        &mut out,
        "ktrace_collectd_torn_tail_bytes_total",
        "Bytes of partial final records cut off by dead connections.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.torn_tail_bytes)]),
    );
    counter(
        &mut out,
        "ktrace_collectd_live_connections",
        "Connections currently open per node.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.live_connections)]),
    );
    counter(
        &mut out,
        "ktrace_collectd_heartbeats_seen_total",
        "HEARTBEAT events observed in each node's stream.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.heartbeats_seen)]),
    );

    for node in &nodes {
        let beats: Vec<[u64; control::HEARTBEAT_WORDS]> = node
            .beats
            .lock()
            .expect("beats lock")
            .values()
            .copied()
            .collect();
        if beats.is_empty() {
            continue;
        }
        let snap = snapshot_from_beats(&beats);
        out.push_str(&to_prometheus_labeled(&snap, &[("node", &node.name)]));
    }
    out
}

/// Renders the `/nodes` JSON document: live per-node ingest accounting.
pub(crate) fn render_nodes_json(shared: &Shared) -> String {
    let mut out = String::from("[");
    for (i, node) in shared.node_states().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = node.summary();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"records_received\":{},\"records_stored\":{},\
             \"records_dropped\":{},\"records_garbled\":{},\"events_received\":{},\
             \"events_stored\":{},\"events_dropped\":{},\"bytes_received\":{},\
             \"torn_tail_bytes\":{},\"connects\":{},\"live_connections\":{},\
             \"heartbeats_seen\":{},\"reconciled\":{}}}",
            s.name,
            s.records_received,
            s.records_stored,
            s.records_dropped,
            s.records_garbled,
            s.events_received,
            s.events_stored,
            s.events_dropped,
            s.bytes_received,
            s.torn_tail_bytes,
            s.connects,
            s.live_connections,
            s.heartbeats_seen,
            s.reconciled(),
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_rebuild_a_snapshot() {
        // A beat per CPU, in HEARTBEAT payload order:
        // [cpu, logged, masked, dropped, cas, filler, wraps, overwrites,
        //  sink_records, sink_dropped].
        let beats = [
            [0u64, 100, 2, 1, 7, 40, 5, 0, 12, 1],
            [1u64, 90, 0, 0, 3, 32, 4, 0, 13, 1],
        ];
        let snap = snapshot_from_beats(&beats);
        assert_eq!(snap.per_cpu.len(), 2);
        assert_eq!(snap.per_cpu[0].events_logged, 100);
        assert_eq!(snap.per_cpu[0].cas_retries, 7);
        assert_eq!(snap.per_cpu[1].filler_words, 32);
        assert_eq!(snap.events_logged(), 190);
        // Sink counters are fleet-of-one maxima across the CPUs' beats.
        assert_eq!(snap.sink.records_written, 13);
        assert_eq!(snap.sink.buffers_dropped, 1);
        assert_eq!(snap.salvage.runs, 0);
    }

    #[test]
    fn labeled_exposition_carries_the_node() {
        let beats = [[0u64, 10, 0, 0, 0, 0, 0, 0, 1, 0]];
        let snap = snapshot_from_beats(&beats);
        let text = to_prometheus_labeled(&snap, &[("node", "db-1")]);
        assert!(text.contains("ktrace_events_logged_total{node=\"db-1\",cpu=\"0\"} 10"));
    }
}
