//! Fleet health, reconstructed from the streams themselves.
//!
//! Each node's session periodically logs `CONTROL`/`HEARTBEAT` events whose
//! payload is a snapshot of the node's own telemetry
//! ([`control::HEARTBEAT_METRICS`]). The collector captures the latest beat
//! per `(node, cpu)` as records arrive, so fleet health needs no side
//! channel: a node's scrape rows are decoded back out of its trace stream
//! and rendered with the same `ktrace-telemetry` exposition the node itself
//! would serve, just with a `node` label in front.

use crate::collector::{NodeState, Shared};
use ktrace_adapt::Anomaly;
use ktrace_format::ids::control;
use ktrace_telemetry::snapshot::{CpuTelemetry, SinkTelemetry, TelemetrySnapshot};
use ktrace_telemetry::to_prometheus_labeled;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Rebuilds a [`TelemetrySnapshot`] from the latest heartbeat payload of
/// each CPU. Per-CPU counters map index-for-index from
/// [`control::HEARTBEAT_METRICS`]; the sink counters (which every CPU's
/// beat reports identically-or-staler) take the maximum across beats.
/// Histograms are not carried by heartbeats and come back empty.
pub fn snapshot_from_beats(beats: &[[u64; control::HEARTBEAT_WORDS]]) -> TelemetrySnapshot {
    let field = |name: &str| -> usize {
        control::HEARTBEAT_METRICS
            .iter()
            .position(|m| *m == name)
            .expect("heartbeat metric name")
            + 1
    };
    let per_cpu = beats
        .iter()
        .map(|b| CpuTelemetry {
            cpu: b[0] as usize,
            events_logged: b[field("events_logged")],
            events_masked: b[field("events_masked")],
            events_dropped: b[field("events_dropped")],
            cas_retries: b[field("cas_retries")],
            filler_words: b[field("filler_words")],
            buffer_wraps: b[field("buffer_wraps")],
            flight_overwrites: b[field("flight_overwrites")],
            ..CpuTelemetry::default()
        })
        .collect();
    let max_of = |name: &str| -> u64 { beats.iter().map(|b| b[field(name)]).max().unwrap_or(0) };
    TelemetrySnapshot {
        per_cpu,
        sink: SinkTelemetry {
            records_written: max_of("sink_records_written"),
            buffers_dropped: max_of("sink_buffers_dropped"),
            ..SinkTelemetry::default()
        },
        salvage: Default::default(),
    }
}

/// One scrape-time observation of a node's adaptive-health state.
pub(crate) struct AnomalyView {
    /// Anomalies fired by the most recent stepped interval.
    pub(crate) last: Vec<Anomaly>,
    /// Detector intervals stepped so far.
    pub(crate) intervals: u64,
    /// Anomaly verdicts fired over the node's lifetime.
    pub(crate) anomalies_total: u64,
}

/// Steps the node's anomaly detector one interval over its latest
/// heartbeat-rebuilt snapshot and returns the post-step state. Every
/// scrape is a control interval: the detector's cumulative-snapshot
/// delta logic absorbs back-to-back scrapes (zero deltas score zero) and
/// node restarts (saturating deltas). A node that has never heartbeat
/// is observed as quiet without consuming a warmup interval.
pub(crate) fn observe_node(node: &NodeState) -> AnomalyView {
    let beats: Vec<[u64; control::HEARTBEAT_WORDS]> = node
        .beats
        .lock()
        .expect("beats lock")
        .values()
        .copied()
        .collect();
    let mut adapt = node.adapt.lock().expect("adapt lock");
    if !beats.is_empty() {
        let snap = snapshot_from_beats(&beats);
        let fired = adapt.detector.observe(&snap);
        adapt.intervals += 1;
        adapt.anomalies_total += fired.len() as u64;
        adapt.last = fired;
    }
    AnomalyView {
        last: adapt.last.clone(),
        intervals: adapt.intervals,
        anomalies_total: adapt.anomalies_total,
    }
}

fn counter(out: &mut String, name: &str, help: &str, rows: &[(String, u64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (labels, v) in rows {
        let _ = writeln!(out, "{name}{{{labels}}} {v}");
    }
}

/// Renders the whole scrape body: collector self-metrics, per-node ingest
/// accounting, then each node's heartbeat-derived telemetry under a `node`
/// label.
pub(crate) fn render_fleet_metrics(shared: &Shared) -> String {
    let mut out = String::new();
    let self_row = |name: &str, help: &str, v: u64| -> String {
        format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n")
    };
    out.push_str(&self_row(
        "ktrace_collectd_connections_accepted_total",
        "Connections accepted by the collector.",
        shared.stats.connections_accepted.load(Ordering::Relaxed),
    ));
    out.push_str(&self_row(
        "ktrace_collectd_connections_rejected_total",
        "Connections dropped before a valid hello and header.",
        shared.stats.connections_rejected.load(Ordering::Relaxed),
    ));
    out.push_str(&self_row(
        "ktrace_collectd_scrapes_served_total",
        "Scrape requests served.",
        shared.stats.scrapes_served.load(Ordering::Relaxed),
    ));

    let nodes = shared.node_states();
    out.push_str("# HELP ktrace_collectd_nodes Nodes that have connected.\n");
    out.push_str("# TYPE ktrace_collectd_nodes gauge\n");
    let _ = writeln!(out, "ktrace_collectd_nodes {}", nodes.len());

    let rows = |f: &dyn Fn(&crate::collector::NodeSummary) -> Vec<(String, u64)>| {
        nodes
            .iter()
            .flat_map(|n| f(&n.summary()))
            .collect::<Vec<_>>()
    };
    counter(
        &mut out,
        "ktrace_collectd_records_total",
        "Records by ingest outcome; stored + dropped == received.",
        &rows(&|s| {
            vec![
                (
                    format!("node=\"{}\",outcome=\"stored\"", s.name),
                    s.records_stored,
                ),
                (
                    format!("node=\"{}\",outcome=\"dropped\"", s.name),
                    s.records_dropped,
                ),
                (
                    format!("node=\"{}\",outcome=\"garbled\"", s.name),
                    s.records_garbled,
                ),
            ]
        }),
    );
    counter(
        &mut out,
        "ktrace_collectd_events_total",
        "Data events by ingest outcome; stored + dropped == received.",
        &rows(&|s| {
            vec![
                (
                    format!("node=\"{}\",outcome=\"stored\"", s.name),
                    s.events_stored,
                ),
                (
                    format!("node=\"{}\",outcome=\"dropped\"", s.name),
                    s.events_dropped,
                ),
            ]
        }),
    );
    counter(
        &mut out,
        "ktrace_collectd_bytes_received_total",
        "Record bytes received per node.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.bytes_received)]),
    );
    counter(
        &mut out,
        "ktrace_collectd_torn_tail_bytes_total",
        "Bytes of partial final records cut off by dead connections.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.torn_tail_bytes)]),
    );
    counter(
        &mut out,
        "ktrace_collectd_live_connections",
        "Connections currently open per node.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.live_connections)]),
    );
    counter(
        &mut out,
        "ktrace_collectd_heartbeats_seen_total",
        "HEARTBEAT events observed in each node's stream.",
        &rows(&|s| vec![(format!("node=\"{}\"", s.name), s.heartbeats_seen)]),
    );

    let views: Vec<(String, AnomalyView)> = nodes
        .iter()
        .map(|n| (n.name.clone(), observe_node(n)))
        .collect();
    counter(
        &mut out,
        "ktrace_adapt_intervals_total",
        "Anomaly-detector intervals stepped per node (one per scrape).",
        &views
            .iter()
            .map(|(name, v)| (format!("node=\"{name}\""), v.intervals))
            .collect::<Vec<_>>(),
    );
    counter(
        &mut out,
        "ktrace_adapt_anomalies_total",
        "Anomaly verdicts fired per node over its lifetime.",
        &views
            .iter()
            .map(|(name, v)| (format!("node=\"{name}\""), v.anomalies_total))
            .collect::<Vec<_>>(),
    );
    out.push_str(
        "# HELP ktrace_adapt_anomaly_score_milli Robust z-score (milli) of the latest \
         interval per track; 0 = quiet.\n# TYPE ktrace_adapt_anomaly_score_milli gauge\n",
    );
    for (name, v) in &views {
        for (i, track) in control::ANOMALY_TRACKS.iter().enumerate() {
            let z = v
                .last
                .iter()
                .find(|a| a.track == i)
                .map_or(0, |a| a.z_milli.max(0));
            let _ = writeln!(
                out,
                "ktrace_adapt_anomaly_score_milli{{node=\"{name}\",track=\"{track}\"}} {z}"
            );
        }
    }

    for node in &nodes {
        let beats: Vec<[u64; control::HEARTBEAT_WORDS]> = node
            .beats
            .lock()
            .expect("beats lock")
            .values()
            .copied()
            .collect();
        if beats.is_empty() {
            continue;
        }
        let snap = snapshot_from_beats(&beats);
        out.push_str(&to_prometheus_labeled(&snap, &[("node", &node.name)]));
    }
    out
}

/// Renders the `/anomalies` JSON document: one object per node with the
/// detector's interval/verdict counters and the anomalies (if any) of the
/// latest interval. Requesting the document steps each node's detector,
/// so the scrape cadence is the control cadence.
pub(crate) fn render_anomalies_json(shared: &Shared) -> String {
    let mut out = String::from("[");
    for (i, node) in shared.node_states().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let v = observe_node(node);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"intervals\":{},\"anomalies_total\":{},\"anomalous\":{},\"last\":[",
            node.name,
            v.intervals,
            v.anomalies_total,
            !v.last.is_empty(),
        );
        for (j, a) in v.last.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"track\":{},\"name\":\"{}\",\"value\":{},\"z_milli\":{}}}",
                a.track,
                a.track_name(),
                a.value,
                a.z_milli,
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Renders the `/nodes` JSON document: live per-node ingest accounting.
pub(crate) fn render_nodes_json(shared: &Shared) -> String {
    let mut out = String::from("[");
    for (i, node) in shared.node_states().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = node.summary();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"records_received\":{},\"records_stored\":{},\
             \"records_dropped\":{},\"records_garbled\":{},\"events_received\":{},\
             \"events_stored\":{},\"events_dropped\":{},\"bytes_received\":{},\
             \"torn_tail_bytes\":{},\"connects\":{},\"live_connections\":{},\
             \"heartbeats_seen\":{},\"reconciled\":{}}}",
            s.name,
            s.records_received,
            s.records_stored,
            s.records_dropped,
            s.records_garbled,
            s.events_received,
            s.events_stored,
            s.events_dropped,
            s.bytes_received,
            s.torn_tail_bytes,
            s.connects,
            s.live_connections,
            s.heartbeats_seen,
            s.reconciled(),
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_rebuild_a_snapshot() {
        // A beat per CPU, in HEARTBEAT payload order:
        // [cpu, logged, masked, dropped, cas, filler, wraps, overwrites,
        //  sink_records, sink_dropped].
        let beats = [
            [0u64, 100, 2, 1, 7, 40, 5, 0, 12, 1],
            [1u64, 90, 0, 0, 3, 32, 4, 0, 13, 1],
        ];
        let snap = snapshot_from_beats(&beats);
        assert_eq!(snap.per_cpu.len(), 2);
        assert_eq!(snap.per_cpu[0].events_logged, 100);
        assert_eq!(snap.per_cpu[0].cas_retries, 7);
        assert_eq!(snap.per_cpu[1].filler_words, 32);
        assert_eq!(snap.events_logged(), 190);
        // Sink counters are fleet-of-one maxima across the CPUs' beats.
        assert_eq!(snap.sink.records_written, 13);
        assert_eq!(snap.sink.buffers_dropped, 1);
        assert_eq!(snap.salvage.runs, 0);
    }

    #[test]
    fn labeled_exposition_carries_the_node() {
        let beats = [[0u64, 10, 0, 0, 0, 0, 0, 0, 1, 0]];
        let snap = snapshot_from_beats(&beats);
        let text = to_prometheus_labeled(&snap, &[("node", "db-1")]);
        assert!(text.contains("ktrace_events_logged_total{node=\"db-1\",cpu=\"0\"} 10"));
    }

    /// Satellite of the adaptive control plane: the HEARTBEAT schema must
    /// round-trip. A snapshot rebuilt from the payloads a node's telemetry
    /// serializes is bit-identical, for every carried field, to the
    /// snapshot the node itself would take.
    #[test]
    fn heartbeat_payloads_round_trip_bit_identically() {
        use ktrace_telemetry::Telemetry;
        let t = Telemetry::new(2);
        for _ in 0..100 {
            t.cpu(0).tally_event();
        }
        for _ in 0..7 {
            t.cpu(0).tally_cas_retry();
        }
        t.cpu(0).tally_masked();
        t.cpu(0).tally_dropped();
        t.cpu(0).tally_filler_words(40);
        t.cpu(0).tally_wrap();
        t.cpu(0).tally_overwrite();
        for _ in 0..90 {
            t.cpu(1).tally_event();
        }
        t.cpu(1).tally_wrap();
        for _ in 0..13 {
            t.sink().tally_record_written();
        }
        t.sink().tally_buffer_dropped(5);

        let beats = [t.heartbeat_payload(0), t.heartbeat_payload(1)];
        let rebuilt = snapshot_from_beats(&beats);
        let live = t.snapshot();

        assert_eq!(rebuilt.per_cpu.len(), live.per_cpu.len());
        for (r, l) in rebuilt.per_cpu.iter().zip(live.per_cpu.iter()) {
            assert_eq!(r.cpu, l.cpu);
            assert_eq!(r.events_logged, l.events_logged);
            assert_eq!(r.events_masked, l.events_masked);
            assert_eq!(r.events_dropped, l.events_dropped);
            assert_eq!(r.cas_retries, l.cas_retries);
            assert_eq!(r.filler_words, l.filler_words);
            assert_eq!(r.buffer_wraps, l.buffer_wraps);
            assert_eq!(r.flight_overwrites, l.flight_overwrites);
        }
        assert_eq!(rebuilt.sink.records_written, live.sink.records_written);
        assert_eq!(rebuilt.sink.buffers_dropped, live.sink.buffers_dropped);
        // And the rebuilt snapshot re-serializes to the identical beats:
        // the schema is a true fixed point, not merely field-compatible.
        for (cpu, beat) in beats.iter().enumerate() {
            let rb = &rebuilt.per_cpu[cpu];
            let reserialized = [
                cpu as u64,
                rb.events_logged,
                rb.events_masked,
                rb.events_dropped,
                rb.cas_retries,
                rb.filler_words,
                rb.buffer_wraps,
                rb.flight_overwrites,
                rebuilt.sink.records_written,
                rebuilt.sink.buffers_dropped,
            ];
            assert_eq!(&reserialized, beat, "cpu {cpu} beat not a fixed point");
        }
    }

    /// The scrape-time detector plumbing: quiet beats observe as healthy,
    /// a drop spike fires, and the JSON document surfaces it.
    #[test]
    fn anomaly_plumbing_fires_on_a_drop_spike() {
        use crate::collector::NodeState;
        let node = NodeState::new_for_tests("web-1");
        let mut dropped = 0u64;
        let beat = |node: &NodeState, drops: u64| {
            let payload = [0u64, 1000, 0, drops, 0, 0, 0, 0, 1, 0];
            node.beats.lock().unwrap().insert(0, payload);
        };
        // Seed + a dozen quiet intervals (steady trickle of drops).
        for _ in 0..13 {
            dropped += 1;
            beat(&node, dropped);
            let v = observe_node(&node);
            assert!(v.last.is_empty(), "quiet interval fired: {:?}", v.last);
        }
        // The spike.
        dropped += 50_000;
        beat(&node, dropped);
        let v = observe_node(&node);
        assert_eq!(v.last.len(), 1, "{:?}", v.last);
        assert_eq!(v.last[0].track_name(), "drop_rate");
        assert_eq!(v.anomalies_total, 1);
        assert_eq!(v.intervals, 14);
    }
}
