//! [`CollectSource`]: the `ktrace-query` [`TraceSource`] over a collector
//! store, so every assertion in `props/ktrace.toml` runs unchanged against
//! fleet data — per node, or fleet-wide merged.
//!
//! Every shard is a valid trace file, so loading is just the strict reader
//! over each shard; [`EventSet::new`] re-normalizes the cross-shard (and
//! cross-node) stream into the canonical `(time, cpu, seq, offset)` order —
//! the same contract every other source honors. Windowed loads use each
//! shard's §3.2 time anchors ([`TraceFileReader::events_between`]), so a
//! narrow question touches only the records that can answer it, shard by
//! shard.

use crate::store;
use ktrace_core::reader::RawEvent;
use ktrace_format::EventRegistry;
use ktrace_io::TraceFileReader;
use ktrace_query::{EventSet, QueryError, TraceSource};
use std::path::{Path, PathBuf};

/// A query source over a collector store.
#[derive(Debug, Clone)]
pub struct CollectSource {
    root: PathBuf,
    node: Option<String>,
}

impl CollectSource {
    /// The fleet-wide merged view: every node in the store.
    pub fn open(root: impl AsRef<Path>) -> CollectSource {
        CollectSource {
            root: root.as_ref().to_path_buf(),
            node: None,
        }
    }

    /// One node's view.
    pub fn node(root: impl AsRef<Path>, name: impl Into<String>) -> CollectSource {
        CollectSource {
            root: root.as_ref().to_path_buf(),
            node: Some(name.into()),
        }
    }

    /// Node names visible in the store.
    pub fn nodes(&self) -> Vec<String> {
        store::node_names(&self.root)
    }

    fn selected_shards(&self) -> Result<Vec<PathBuf>, QueryError> {
        let names = match &self.node {
            Some(name) => vec![name.clone()],
            None => store::node_names(&self.root),
        };
        let shards: Vec<PathBuf> = names
            .iter()
            .flat_map(|n| store::shard_paths(&self.root, n))
            .collect();
        if shards.is_empty() {
            return Err(QueryError::Unreadable(format!(
                "no shards under {} for {}",
                self.root.display(),
                self.node.as_deref().unwrap_or("any node"),
            )));
        }
        Ok(shards)
    }

    /// Reads the selected shards through `read`, merging registries (the
    /// richest wins — nodes may register different app events) and taking
    /// the clock rate from the first shard.
    fn load_with(
        &self,
        mut read: impl FnMut(
            &mut TraceFileReader<std::io::BufReader<std::fs::File>>,
        ) -> Result<Vec<RawEvent>, QueryError>,
    ) -> Result<EventSet, QueryError> {
        let mut events = Vec::new();
        let mut registry = EventRegistry::new();
        let mut ticks_per_sec = 0u64;
        for shard in self.selected_shards()? {
            let mut reader = TraceFileReader::open(&shard)?;
            if reader.header().registry.len() > registry.len() {
                registry = reader.header().registry.clone();
            }
            if ticks_per_sec == 0 {
                ticks_per_sec = reader.header().ticks_per_sec;
            }
            events.extend(read(&mut reader)?);
        }
        Ok(EventSet::new(events, registry, ticks_per_sec))
    }
}

impl TraceSource for CollectSource {
    fn describe(&self) -> String {
        match &self.node {
            Some(n) => format!("collect:{}/{n}", self.root.display()),
            None => format!("collect:{} (fleet)", self.root.display()),
        }
    }

    fn load(&mut self) -> Result<EventSet, QueryError> {
        self.load_with(|reader| Ok(reader.events()?.collect()))
    }

    fn load_window(&mut self, t0: u64, t1: u64) -> Result<EventSet, QueryError> {
        self.load_with(|reader| Ok(reader.events_between(t0, t1)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::NodeStore;
    use ktrace_core::TraceConfig;
    use ktrace_format::MajorId;
    use ktrace_io::TraceSession;
    use ktrace_testutil::TempDir;
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct VecSink(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for VecSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Runs a small session into memory and splits its byte stream into a
    /// store for `node` (header + every record through a rolling store).
    fn populate(store_root: &Path, node: &str, times: &[u64]) -> u64 {
        let bytes = Arc::new(Mutex::new(Vec::new()));
        let sink = VecSink(bytes.clone());
        let session = TraceSession::builder()
            .geometry(TraceConfig::small())
            .ncpus(1)
            .start(sink)
            .unwrap();
        for &t in times {
            assert!(session
                .logger()
                .handle(0)
                .unwrap()
                .log1(MajorId::TEST, 1, t));
        }
        let stats = session.finish();
        assert!(stats.lossless());

        let bytes = bytes.lock().unwrap().clone();
        let (header, header_len) = ktrace_io::FileHeader::decode(&bytes).unwrap();
        let record_size = header.record_size();
        let mut ns = NodeStore::create(
            store_root,
            node,
            bytes[..header_len].to_vec(),
            record_size,
            2,
        )
        .unwrap();
        for record in bytes[header_len..].chunks(record_size) {
            assert_eq!(record.len(), record_size, "whole records only");
            ns.append(record).unwrap();
        }
        ns.finish().unwrap();
        stats.records_written
    }

    #[test]
    fn node_and_fleet_views_load_and_merge() {
        let tmp = TempDir::new("collect-source");
        populate(tmp.path(), "a", &[1, 2, 3]);
        populate(tmp.path(), "b", &[4, 5]);

        let mut one = CollectSource::node(tmp.path(), "a");
        assert_eq!(one.load().unwrap().data_events().count(), 3);

        let mut fleet = CollectSource::open(tmp.path());
        assert_eq!(fleet.nodes(), vec!["a".to_string(), "b".to_string()]);
        let set = fleet.load().unwrap();
        assert_eq!(set.data_events().count(), 5);
        // Canonical order holds across nodes.
        let times: Vec<u64> = set.events.iter().map(|e| e.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(set.ticks_per_sec > 0);
        assert!(!set.registry.is_empty(), "registry came through the shards");
    }

    #[test]
    fn windowed_load_matches_filtered_full_load() {
        let tmp = TempDir::new("collect-window");
        populate(tmp.path(), "a", &(0..200).collect::<Vec<u64>>());

        let mut src = CollectSource::node(tmp.path(), "a");
        let full = src.load().unwrap();
        let (t0, t1) = {
            let all: Vec<u64> = full.data_events().map(|e| e.time).collect();
            (all[all.len() / 4], all[3 * all.len() / 4])
        };
        let windowed = src.load_window(t0, t1).unwrap();
        let expect: Vec<u64> = full
            .data_events()
            .map(|e| e.time)
            .filter(|&t| t >= t0 && t < t1)
            .collect();
        let got: Vec<u64> = windowed.data_events().map(|e| e.time).collect();
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    #[test]
    fn empty_store_is_unreadable_not_empty() {
        let tmp = TempDir::new("collect-empty");
        let mut src = CollectSource::open(tmp.path());
        assert!(matches!(src.load(), Err(QueryError::Unreadable(_))));
    }
}
