//! The rolling sharded on-disk store.
//!
//! Each node's stream lands under `<store>/<node>/` as a sequence of shard
//! files, every one a **valid trace file**: the node's own header bytes
//! (captured off the wire) followed by whole fixed-size records. A shard
//! rolls after `records_per_shard` records, so no single file grows without
//! bound and any record is at a computable offset inside its shard — the
//! §3.2 alignment-point random access the strict reader and
//! [`CollectSource`](crate::CollectSource) rely on. The format has no
//! trailer, so a shard being written is already readable.

use std::fs::File;
use std::io::{BufWriter, Error, ErrorKind, Write};
use std::path::{Path, PathBuf};

/// Shard file name for index `i`.
fn shard_name(i: u32) -> String {
    format!("shard-{i:04}.ktrace")
}

/// Sorted shard paths currently on disk for `node` (empty if the node has
/// no directory yet).
pub fn shard_paths(store: &Path, node: &str) -> Vec<PathBuf> {
    let dir = store.join(node);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut shards: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".ktrace"))
        })
        .collect();
    shards.sort();
    shards
}

/// Sorted node names with directories in `store`.
pub fn node_names(store: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(store) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    names
}

/// One node's rolling store: appends whole records, rolling to a new shard
/// file on the configured cadence. Reconnects resume numbering after the
/// shards already on disk.
pub struct NodeStore {
    dir: PathBuf,
    header_bytes: Vec<u8>,
    record_size: usize,
    records_per_shard: u64,
    next_shard: u32,
    in_shard: u64,
    current: Option<BufWriter<File>>,
}

impl NodeStore {
    /// Opens (creating directories as needed) the store for `node`.
    /// `header_bytes` is the node's complete trace header as captured off
    /// the wire; it becomes the header of every shard this store writes.
    pub fn create(
        store: &Path,
        node: &str,
        header_bytes: Vec<u8>,
        record_size: usize,
        records_per_shard: u64,
    ) -> std::io::Result<NodeStore> {
        if record_size == 0 || records_per_shard == 0 {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "record size and shard cadence must be nonzero",
            ));
        }
        let dir = store.join(node);
        std::fs::create_dir_all(&dir)?;
        let next_shard = shard_paths(store, node).len() as u32;
        Ok(NodeStore {
            dir,
            header_bytes,
            record_size,
            records_per_shard,
            next_shard,
            in_shard: 0,
            current: None,
        })
    }

    /// The fixed record size this store accepts.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Appends one whole record, rolling shards as needed. Flushes after
    /// every record so readers see whole records mid-run.
    pub fn append(&mut self, record: &[u8]) -> std::io::Result<()> {
        if record.len() != self.record_size {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "record length does not match the stream's record size",
            ));
        }
        if self.current.is_none() || self.in_shard >= self.records_per_shard {
            self.roll()?;
        }
        let w = self.current.as_mut().expect("roll opened a shard");
        w.write_all(record)?;
        w.flush()?;
        self.in_shard += 1;
        Ok(())
    }

    /// Closes the current shard (if any) and opens the next, writing the
    /// header first.
    fn roll(&mut self) -> std::io::Result<()> {
        self.finish()?;
        let path = self.dir.join(shard_name(self.next_shard));
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&self.header_bytes)?;
        w.flush()?;
        self.next_shard += 1;
        self.in_shard = 0;
        self.current = Some(w);
        Ok(())
    }

    /// Flushes and closes the current shard.
    pub fn finish(&mut self) -> std::io::Result<()> {
        if let Some(mut w) = self.current.take() {
            w.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_format::EventRegistry;
    use ktrace_io::{FileHeader, TraceFileReader};
    use ktrace_testutil::TempDir;

    fn header() -> FileHeader {
        FileHeader {
            ncpus: 1,
            buffer_words: 8,
            ticks_per_sec: 1_000_000_000,
            clock_synchronized: true,
            registry: EventRegistry::with_builtin(),
        }
    }

    fn record(header: &FileHeader, seq: u64) -> Vec<u8> {
        let mut r = ktrace_io::file::encode_record_header(0, seq, true).to_vec();
        // An empty buffer: all filler words is not a valid event stream,
        // so use zeroed words only for store-level (not parse-level) tests.
        r.resize(header.record_size(), 0);
        r
    }

    #[test]
    fn shards_roll_and_stay_readable() {
        let tmp = TempDir::new("store");
        let h = header();
        let mut store =
            NodeStore::create(tmp.path(), "n0", h.encode(), h.record_size(), 3).unwrap();
        for seq in 0..7 {
            store.append(&record(&h, seq)).unwrap();
        }
        store.finish().unwrap();
        let shards = shard_paths(tmp.path(), "n0");
        assert_eq!(shards.len(), 3, "7 records at 3/shard → 3 shards");
        let counts: Vec<usize> = shards
            .iter()
            .map(|p| TraceFileReader::open(p).unwrap().record_count())
            .collect();
        assert_eq!(counts, vec![3, 3, 1]);
        assert_eq!(node_names(tmp.path()), vec!["n0".to_string()]);
    }

    #[test]
    fn reconnect_resumes_shard_numbering() {
        let tmp = TempDir::new("store-resume");
        let h = header();
        let mut a = NodeStore::create(tmp.path(), "n0", h.encode(), h.record_size(), 2).unwrap();
        a.append(&record(&h, 0)).unwrap();
        a.finish().unwrap();
        let mut b = NodeStore::create(tmp.path(), "n0", h.encode(), h.record_size(), 2).unwrap();
        b.append(&record(&h, 1)).unwrap();
        b.finish().unwrap();
        let shards = shard_paths(tmp.path(), "n0");
        assert_eq!(shards.len(), 2);
        assert!(shards[1].ends_with("shard-0001.ktrace"));
    }

    #[test]
    fn wrong_sized_records_are_refused() {
        let tmp = TempDir::new("store-size");
        let h = header();
        let mut store =
            NodeStore::create(tmp.path(), "n0", h.encode(), h.record_size(), 2).unwrap();
        assert!(store.append(&[0u8; 3]).is_err());
    }
}
