//! The aggregation service: accept, shard, account, store.
//!
//! One reader thread per connection parses the stream into whole records
//! and hands each to a store worker over a **bounded** queue. A node always
//! hashes to the same worker, so its records are stored in arrival order
//! with no cross-worker contention. When a queue is full the record is
//! **dropped and counted** — backpressure reaches the node's accounting,
//! never its socket, so a slow disk cannot wedge the fleet (the same
//! degrade-don't-wedge contract as the session drainer in
//! `ktrace-io::session`).
//!
//! Exact accounting is the invariant everything else leans on: every
//! well-formed record's data events land in exactly one of *stored* or
//! *dropped*, so `events_stored + events_dropped == events_received` holds
//! per node at all times — the reconciliation the fleet tests pin.

use crate::proto;
use crate::scrape;
use crate::store::NodeStore;
use ktrace_adapt::{Anomaly, Detector};
use ktrace_core::parse_buffer;
use ktrace_format::ids::control;
use ktrace_io::file::{decode_record_header, RECORD_HEADER_BYTES};
use ktrace_io::FileHeader;
use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Collector tuning. The defaults suit tests and small fleets; production
/// mostly raises `queue_depth` and `records_per_shard`.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Root of the on-disk store (`<store>/<node>/shard-NNNN.ktrace`).
    pub store_dir: PathBuf,
    /// Store worker threads; each owns the stores of the nodes hashed to
    /// it.
    pub shards: usize,
    /// Bound of each worker's ingest queue, records. A full queue turns
    /// arrivals into counted drops.
    pub queue_depth: usize,
    /// Records per shard file before rolling to the next.
    pub records_per_shard: u64,
    /// Socket read timeout — the cadence at which reader threads notice a
    /// shutdown request.
    pub read_timeout: Duration,
    /// Artificial per-record store latency. A test drill: drags the workers
    /// so bounded queues overflow and the drop path is exercised.
    pub store_write_delay: Option<Duration>,
}

impl CollectorConfig {
    /// Defaults rooted at `store_dir`: 4 shards, 256-record queues,
    /// 4096-record shard files.
    pub fn new(store_dir: impl Into<PathBuf>) -> CollectorConfig {
        CollectorConfig {
            store_dir: store_dir.into(),
            shards: 4,
            queue_depth: 256,
            records_per_shard: 4096,
            read_timeout: Duration::from_millis(25),
            store_write_delay: None,
        }
    }
}

/// Why the collector could not start.
#[derive(Debug)]
pub enum CollectError {
    /// The listen or scrape socket could not be bound.
    Bind(std::io::Error),
    /// The store directory could not be created.
    Store(std::io::Error),
}

impl std::fmt::Display for CollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectError::Bind(e) => write!(f, "cannot bind collector socket: {e}"),
            CollectError::Store(e) => write!(f, "cannot create collector store: {e}"),
        }
    }
}

impl std::error::Error for CollectError {}

impl CollectError {
    /// The shared-table exit code for this failure
    /// ([`exit::COLLECT_BIND`](crate::exit::COLLECT_BIND) /
    /// [`exit::COLLECT_STORE`](crate::exit::COLLECT_STORE)).
    pub fn exit_code(&self) -> u8 {
        match self {
            CollectError::Bind(_) => crate::exit::COLLECT_BIND,
            CollectError::Store(_) => crate::exit::COLLECT_STORE,
        }
    }
}

/// Live per-node accounting, shared between the node's reader thread, its
/// store worker, the scrape endpoint, and summaries. Plain counters under
/// relaxed ordering: every value is a statistic, ordered by the happens-
/// before edges of the queue hand-off.
pub(crate) struct NodeState {
    pub(crate) name: String,
    pub(crate) records_received: AtomicU64,
    pub(crate) records_stored: AtomicU64,
    pub(crate) records_dropped: AtomicU64,
    pub(crate) records_garbled: AtomicU64,
    pub(crate) events_received: AtomicU64,
    pub(crate) events_stored: AtomicU64,
    pub(crate) events_dropped: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) torn_tail_bytes: AtomicU64,
    pub(crate) connects: AtomicU64,
    pub(crate) live_connections: AtomicU64,
    pub(crate) heartbeats_seen: AtomicU64,
    pub(crate) ticks_per_sec: AtomicU64,
    /// Latest HEARTBEAT payload per CPU, as logged by the node itself.
    pub(crate) beats: Mutex<BTreeMap<usize, [u64; control::HEARTBEAT_WORDS]>>,
    /// Anomaly detection over this node's heartbeat-rebuilt snapshots,
    /// stepped by the health plane at scrape time.
    pub(crate) adapt: Mutex<NodeAdapt>,
}

/// One node's detector plus the verdict of its latest stepped interval.
#[derive(Default)]
pub(crate) struct NodeAdapt {
    pub(crate) detector: Detector,
    /// Anomalies fired by the most recent interval.
    pub(crate) last: Vec<Anomaly>,
    /// Detector intervals stepped so far.
    pub(crate) intervals: u64,
    /// Anomaly verdicts fired over the node's lifetime.
    pub(crate) anomalies_total: u64,
}

impl NodeState {
    fn new(name: String) -> NodeState {
        NodeState {
            name,
            records_received: AtomicU64::new(0),
            records_stored: AtomicU64::new(0),
            records_dropped: AtomicU64::new(0),
            records_garbled: AtomicU64::new(0),
            events_received: AtomicU64::new(0),
            events_stored: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            torn_tail_bytes: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            live_connections: AtomicU64::new(0),
            heartbeats_seen: AtomicU64::new(0),
            ticks_per_sec: AtomicU64::new(0),
            beats: Mutex::new(BTreeMap::new()),
            adapt: Mutex::new(NodeAdapt::default()),
        }
    }

    /// A detached node state for in-crate unit tests (the health plane
    /// exercises detector plumbing without a live collector).
    #[cfg(test)]
    pub(crate) fn new_for_tests(name: &str) -> NodeState {
        NodeState::new(name.to_string())
    }

    fn note_heartbeat(&self, payload: &[u64]) {
        let Ok(words) = <[u64; control::HEARTBEAT_WORDS]>::try_from(payload) else {
            return;
        };
        self.heartbeats_seen.fetch_add(1, Ordering::Relaxed);
        let cpu = words[0] as usize;
        self.beats.lock().expect("beats lock").insert(cpu, words);
    }

    pub(crate) fn summary(&self) -> NodeSummary {
        NodeSummary {
            name: self.name.clone(),
            records_received: self.records_received.load(Ordering::Relaxed),
            records_stored: self.records_stored.load(Ordering::Relaxed),
            records_dropped: self.records_dropped.load(Ordering::Relaxed),
            records_garbled: self.records_garbled.load(Ordering::Relaxed),
            events_received: self.events_received.load(Ordering::Relaxed),
            events_stored: self.events_stored.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            torn_tail_bytes: self.torn_tail_bytes.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            live_connections: self.live_connections.load(Ordering::Relaxed),
            heartbeats_seen: self.heartbeats_seen.load(Ordering::Relaxed),
        }
    }
}

/// The collector's own self-metrics.
#[derive(Default)]
pub(crate) struct SelfStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) scrapes_served: AtomicU64,
}

/// State shared by every collector thread.
pub(crate) struct Shared {
    pub(crate) config: CollectorConfig,
    pub(crate) stop: AtomicBool,
    pub(crate) nodes: Mutex<BTreeMap<String, Arc<NodeState>>>,
    pub(crate) stats: SelfStats,
}

impl Shared {
    pub(crate) fn node_entry(&self, name: &str) -> Arc<NodeState> {
        let mut nodes = self.nodes.lock().expect("nodes lock");
        nodes
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(NodeState::new(name.to_string())))
            .clone()
    }

    pub(crate) fn node_states(&self) -> Vec<Arc<NodeState>> {
        self.nodes
            .lock()
            .expect("nodes lock")
            .values()
            .cloned()
            .collect()
    }
}

/// Final (or live) accounting for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSummary {
    /// The node's wire name.
    pub name: String,
    /// Well-formed records read off the wire.
    pub records_received: u64,
    /// Records written into the store.
    pub records_stored: u64,
    /// Records dropped — queue overflow or store failure — instead of
    /// blocking the stream.
    pub records_dropped: u64,
    /// Records abandoned because the stream desynced (bad record magic).
    pub records_garbled: u64,
    /// Data events inside received records.
    pub events_received: u64,
    /// Data events inside stored records.
    pub events_stored: u64,
    /// Data events inside dropped records.
    pub events_dropped: u64,
    /// Payload bytes received (records only, not the hello or header).
    pub bytes_received: u64,
    /// Bytes of a final partial record cut off by a dead connection.
    pub torn_tail_bytes: u64,
    /// Connections this node has opened.
    pub connects: u64,
    /// Connections currently open.
    pub live_connections: u64,
    /// HEARTBEAT events observed in the stream.
    pub heartbeats_seen: u64,
}

impl NodeSummary {
    /// The conservation law: every received event was stored or counted as
    /// dropped.
    pub fn reconciled(&self) -> bool {
        self.events_stored + self.events_dropped == self.events_received
            && self.records_stored + self.records_dropped == self.records_received
    }

    /// True if nothing was dropped, torn, or garbled.
    pub fn lossless(&self) -> bool {
        self.records_dropped == 0 && self.records_garbled == 0 && self.torn_tail_bytes == 0
    }
}

/// Fleet-wide accounting, from [`Collector::summary`] or
/// [`Collector::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct FleetSummary {
    /// Per-node accounting, name-sorted.
    pub nodes: Vec<NodeSummary>,
}

impl FleetSummary {
    /// The named node's summary.
    pub fn node(&self, name: &str) -> Option<&NodeSummary> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// True if every node's accounting reconciles (see
    /// [`NodeSummary::reconciled`]).
    pub fn reconciled(&self) -> bool {
        self.nodes.iter().all(|n| n.reconciled())
    }

    /// Total records dropped across the fleet.
    pub fn records_dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.records_dropped).sum()
    }

    /// Total data events stored across the fleet.
    pub fn events_stored(&self) -> u64 {
        self.nodes.iter().map(|n| n.events_stored).sum()
    }

    /// A one-line-per-node table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>9} {:>9} {:>8} {:>10} {:>10} {:>9} {:>6}",
            "node", "records", "stored", "dropped", "events", "ev-stored", "ev-drop", "beats"
        );
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "{:<20} {:>9} {:>9} {:>8} {:>10} {:>10} {:>9} {:>6}{}",
                n.name,
                n.records_received,
                n.records_stored,
                n.records_dropped,
                n.events_received,
                n.events_stored,
                n.events_dropped,
                n.heartbeats_seen,
                if n.torn_tail_bytes > 0 {
                    format!("  (torn tail: {} B)", n.torn_tail_bytes)
                } else {
                    String::new()
                }
            );
        }
        out
    }
}

/// One record queued from a reader to a store worker.
struct StoreJob {
    node: Arc<NodeState>,
    header_bytes: Arc<Vec<u8>>,
    record_size: usize,
    bytes: Vec<u8>,
    data_events: u64,
}

/// A `Read` over a timeout-bearing socket that turns a shutdown request
/// into EOF: transient timeouts loop, unless `stop` is set, in which case
/// the reader sees a clean end-of-stream and unwinds. This is what makes
/// "the collector never wedges" a structural property — every blocking read
/// has a bounded wait and a stop check.
struct PatientReader<'a> {
    conn: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.conn.read(buf) {
                Ok(n) => return Ok(n),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if self.stop.load(Ordering::Acquire) {
                        return Ok(0);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Reads as much of `buf` as the stream yields before EOF. `Ok(n)` with
/// `n < buf.len()` is a torn tail.
fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => break,
            Ok(n) => at += n,
            Err(e) => return Err(e),
        }
    }
    Ok(at)
}

/// Stable tiny string hash (FNV-1a) for node→shard assignment.
fn shard_of(name: &str, shards: usize) -> usize {
    let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    (h % shards as u64) as usize
}

/// One connection, hello to EOF.
fn serve_connection(conn: TcpStream, shared: &Shared, senders: &[SyncSender<StoreJob>]) {
    let mut r = PatientReader {
        conn: &conn,
        stop: &shared.stop,
    };
    let (name, header_bytes) = match proto::read_hello(&mut r)
        .and_then(|name| proto::read_header_bytes(&mut r).map(|h| (name, h)))
    {
        Ok(v) => v,
        Err(_) => {
            shared
                .stats
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let Ok((header, _)) = FileHeader::decode(&header_bytes) else {
        shared
            .stats
            .connections_rejected
            .fetch_add(1, Ordering::Relaxed);
        return;
    };
    let record_size = header.record_size();
    let node = shared.node_entry(&name);
    node.connects.fetch_add(1, Ordering::Relaxed);
    node.live_connections.fetch_add(1, Ordering::Relaxed);
    node.ticks_per_sec
        .store(header.ticks_per_sec, Ordering::Relaxed);
    let tx = &senders[shard_of(&name, senders.len())];
    let header_bytes = Arc::new(header_bytes);

    let mut buf = vec![0u8; record_size];
    while let Ok(got) = read_up_to(&mut r, &mut buf) {
        if got == 0 {
            break; // clean EOF (or shutdown)
        }
        if got < record_size {
            node.torn_tail_bytes
                .fetch_add(got as u64, Ordering::Relaxed);
            break;
        }
        let Ok((cpu, seq, _complete)) = decode_record_header(&buf, 0) else {
            // Desynced: without record alignment nothing downstream is
            // trustworthy. Abandon the connection, visibly.
            node.records_garbled.fetch_add(1, Ordering::Relaxed);
            break;
        };
        // Parse once, here: exact event accounting for the drop path and
        // heartbeat capture for health, whatever the store decides.
        let words: Vec<u64> = buf[RECORD_HEADER_BYTES..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        let parsed = parse_buffer(cpu as usize, seq, &words, None);
        let data_events = parsed.data_events().count() as u64;
        for e in &parsed.events {
            if e.is_control() && e.minor == control::HEARTBEAT {
                node.note_heartbeat(&e.payload);
            }
        }
        node.records_received.fetch_add(1, Ordering::Relaxed);
        node.events_received
            .fetch_add(data_events, Ordering::Relaxed);
        node.bytes_received.fetch_add(got as u64, Ordering::Relaxed);
        let job = StoreJob {
            node: node.clone(),
            header_bytes: header_bytes.clone(),
            record_size,
            bytes: buf.clone(),
            data_events,
        };
        match tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                // The bounded-queue contract: never block the stream.
                job.node.records_dropped.fetch_add(1, Ordering::Relaxed);
                job.node
                    .events_dropped
                    .fetch_add(job.data_events, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    node.live_connections.fetch_sub(1, Ordering::Relaxed);
}

/// One store worker: owns the `NodeStore`s of every node hashed to it.
/// Exits when all senders are dropped (shutdown), after draining the queue
/// and flushing every store.
fn store_worker(rx: Receiver<StoreJob>, shared: &Shared) {
    let mut stores: HashMap<String, NodeStore> = HashMap::new();
    while let Ok(job) = rx.recv() {
        if let Some(delay) = shared.config.store_write_delay {
            std::thread::sleep(delay);
        }
        let name = job.node.name.clone();
        // A reconnect with different geometry gets a fresh store (shard
        // numbering continues; every shard is self-describing).
        if stores
            .get(&name)
            .is_some_and(|s| s.record_size() != job.record_size)
        {
            if let Some(mut old) = stores.remove(&name) {
                let _ = old.finish();
            }
        }
        let store = match stores.entry(name) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                match NodeStore::create(
                    &shared.config.store_dir,
                    &job.node.name,
                    job.header_bytes.as_ref().clone(),
                    job.record_size,
                    shared.config.records_per_shard,
                ) {
                    Ok(s) => e.insert(s),
                    Err(_) => {
                        job.node.records_dropped.fetch_add(1, Ordering::Relaxed);
                        job.node
                            .events_dropped
                            .fetch_add(job.data_events, Ordering::Relaxed);
                        continue;
                    }
                }
            }
        };
        match store.append(&job.bytes) {
            Ok(()) => {
                job.node.records_stored.fetch_add(1, Ordering::Relaxed);
                job.node
                    .events_stored
                    .fetch_add(job.data_events, Ordering::Relaxed);
            }
            Err(_) => {
                job.node.records_dropped.fetch_add(1, Ordering::Relaxed);
                job.node
                    .events_dropped
                    .fetch_add(job.data_events, Ordering::Relaxed);
            }
        }
    }
    for store in stores.values_mut() {
        let _ = store.finish();
    }
}

/// The running aggregation service. Dropping it (or calling
/// [`shutdown`](Collector::shutdown)) stops every thread; no thread ever
/// blocks without a stop check, so teardown is prompt even with nodes
/// mid-stream.
pub struct Collector {
    shared: Arc<Shared>,
    addr: SocketAddr,
    scrape_addr: SocketAddr,
    senders: Vec<SyncSender<StoreJob>>,
    workers: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    scraper: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Collector {
    /// Binds the ingest socket at `addr` (plus a loopback scrape socket on
    /// an ephemeral port) and starts the service.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: CollectorConfig,
    ) -> Result<Collector, CollectError> {
        std::fs::create_dir_all(&config.store_dir).map_err(CollectError::Store)?;
        let listener = TcpListener::bind(addr).map_err(CollectError::Bind)?;
        listener.set_nonblocking(true).map_err(CollectError::Bind)?;
        let local = listener.local_addr().map_err(CollectError::Bind)?;
        let scrape_listener = TcpListener::bind("127.0.0.1:0").map_err(CollectError::Bind)?;
        let scrape_addr = scrape_listener.local_addr().map_err(CollectError::Bind)?;

        let shared = Arc::new(Shared {
            config,
            stop: AtomicBool::new(false),
            nodes: Mutex::new(BTreeMap::new()),
            stats: SelfStats::default(),
        });

        let shards = shared.config.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(shared.config.queue_depth.max(1));
            senders.push(tx);
            let shared2 = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("collectd-store-{i}"))
                    .spawn(move || store_worker(rx, &shared2))
                    .expect("spawn store worker"),
            );
        }

        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared2 = shared.clone();
            let senders2 = senders.clone();
            let readers2 = readers.clone();
            std::thread::Builder::new()
                .name("collectd-accept".into())
                .spawn(move || {
                    while !shared2.stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((conn, _peer)) => {
                                shared2
                                    .stats
                                    .connections_accepted
                                    .fetch_add(1, Ordering::Relaxed);
                                let _ = conn.set_nonblocking(false);
                                let _ = conn.set_read_timeout(Some(shared2.config.read_timeout));
                                let shared3 = shared2.clone();
                                let senders3 = senders2.clone();
                                let handle = std::thread::Builder::new()
                                    .name("collectd-reader".into())
                                    .spawn(move || serve_connection(conn, &shared3, &senders3))
                                    .expect("spawn reader");
                                readers2.lock().expect("readers lock").push(handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        let scraper = {
            let shared2 = shared.clone();
            std::thread::Builder::new()
                .name("collectd-scrape".into())
                .spawn(move || scrape::scrape_loop(scrape_listener, &shared2))
                .expect("spawn scraper")
        };

        Ok(Collector {
            shared,
            addr: local,
            scrape_addr,
            senders,
            workers,
            acceptor: Some(acceptor),
            scraper: Some(scraper),
            readers,
        })
    }

    /// The ingest address nodes connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The HTTP scrape address (`GET /metrics`, `GET /nodes`).
    pub fn scrape_addr(&self) -> SocketAddr {
        self.scrape_addr
    }

    /// A live fleet snapshot.
    pub fn summary(&self) -> FleetSummary {
        FleetSummary {
            nodes: self
                .shared
                .node_states()
                .iter()
                .map(|n| n.summary())
                .collect(),
        }
    }

    /// Stops accepting, unwinds every reader, drains the store queues,
    /// flushes every shard, and returns the final accounting.
    pub fn shutdown(mut self) -> FleetSummary {
        self.stop_threads();
        self.summary()
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scraper.take() {
            let _ = h.join();
        }
        let readers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("readers lock"));
        for h in readers {
            let _ = h.join();
        }
        // Dropping the senders ends the workers' recv loops; they drain
        // what is queued and flush.
        self.senders.clear();
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node;
    use ktrace_core::TraceConfig;
    use ktrace_format::MajorId;
    use ktrace_io::{TraceFileReader, TraceSession};
    use ktrace_testutil::TempDir;

    #[test]
    fn one_node_round_trips_through_the_store() {
        let tmp = TempDir::new("collect-one");
        let mut config = CollectorConfig::new(tmp.path());
        config.records_per_shard = 4;
        let collector = Collector::bind("127.0.0.1:0", config).unwrap();

        let sink = node::connect(collector.local_addr(), "solo").unwrap();
        let session = TraceSession::builder()
            .geometry(TraceConfig::small())
            .ncpus(2)
            .start(sink)
            .unwrap();
        let mut logged = 0u64;
        for i in 0..2_000u64 {
            for cpu in 0..2 {
                if session
                    .logger()
                    .handle(cpu)
                    .unwrap()
                    .log2(MajorId::TEST, cpu as u16, i, i)
                {
                    logged += 1;
                }
            }
        }
        let stats = session.finish();
        assert!(stats.lossless(), "{stats:?}");

        let summary = wait_for_drain(&collector, "solo", stats.records_written);
        let n = summary.node("solo").expect("node registered");
        assert!(n.reconciled(), "{n:?}");
        assert!(n.lossless(), "{n:?}");
        assert_eq!(n.records_received, stats.records_written);
        assert_eq!(n.events_received, logged);
        assert_eq!(n.events_stored, logged);
        drop(summary);
        let final_summary = collector.shutdown();
        assert!(final_summary.reconciled());

        // The store is a sequence of valid, strictly readable trace files.
        let shards = crate::store::shard_paths(tmp.path(), "solo");
        assert!(shards.len() > 1, "rolling actually rolled: {shards:?}");
        let mut stored = 0u64;
        for shard in &shards {
            let mut r = TraceFileReader::open(shard).unwrap();
            stored += r.events().unwrap().filter(|e| !e.is_control()).count() as u64;
        }
        assert_eq!(stored, logged);
    }

    /// Polls until the node's stored+dropped records reach `records` (the
    /// queues are asynchronous), panicking after a bounded wait.
    fn wait_for_drain(collector: &Collector, name: &str, records: u64) -> FleetSummary {
        for _ in 0..500 {
            let s = collector.summary();
            if let Some(n) = s.node(name) {
                if n.records_stored + n.records_dropped >= records {
                    return s;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("collector never drained {records} records for {name}");
    }

    #[test]
    fn garbage_connections_are_rejected_not_fatal() {
        let tmp = TempDir::new("collect-garbage");
        let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(tmp.path())).unwrap();
        {
            use std::io::Write as _;
            let mut conn = TcpStream::connect(collector.local_addr()).unwrap();
            conn.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        }
        for _ in 0..500 {
            if collector
                .shared
                .stats
                .connections_rejected
                .load(Ordering::Relaxed)
                > 0
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            collector
                .shared
                .stats
                .connections_rejected
                .load(Ordering::Relaxed),
            1
        );
        let summary = collector.shutdown();
        assert!(summary.nodes.is_empty());
    }
}
