//! The collection wire protocol.
//!
//! A node opens a TCP connection, sends one **hello frame** — magic, name
//! length, name — and then streams an ordinary trace byte stream: the
//! `ktrace-io` file header followed by fixed-size buffer records, exactly
//! the bytes a [`TraceSession`](ktrace_io::TraceSession) writes to any
//! sink. The collector needs no custom framing beyond the hello, because
//! the trace format is already self-describing and record-aligned.
//!
//! ```text
//! +-------------------------------------------------------------+
//! | hello magic "KCOLHELO" (8) | name_len u32 LE | name (UTF-8) |
//! +-------------------------------------------------------------+
//! | trace file header (fixed 40 bytes + registry text)          |
//! | record 0 | record 1 | …   (fixed record_size each)          |
//! +-------------------------------------------------------------+
//! ```

use std::io::{Error, ErrorKind, Read, Write};

/// Identifies a collector hello frame.
pub const HELLO_MAGIC: [u8; 8] = *b"KCOLHELO";

/// Longest accepted node name, bytes.
pub const MAX_NODE_NAME: usize = 128;

/// Registry-text cap when reading a stream header; a hostile or desynced
/// peer cannot make the collector allocate unboundedly.
pub const MAX_REGISTRY_BYTES: usize = 16 * 1024 * 1024;

/// Bytes of the trace header before the registry text (see
/// `ktrace_io::file`): magic 8, version 4, flags 4, ncpus 4, buffer_words
/// 4, ticks_per_sec 8, registry_bytes 8.
const FIXED_HEADER_BYTES: usize = 40;

/// Byte offset of the `registry_bytes` u64 within the fixed header.
const REGISTRY_LEN_OFFSET: usize = 32;

/// True if `name` is usable as both a wire identity and a store directory
/// name: 1–[`MAX_NODE_NAME`] bytes of `[A-Za-z0-9._-]`, not starting with
/// a dot or a dash.
pub fn valid_node_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NODE_NAME
        && !name.starts_with(['.', '-'])
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Writes the hello frame naming this node.
pub fn write_hello(w: &mut impl Write, name: &str) -> std::io::Result<()> {
    if !valid_node_name(name) {
        return Err(Error::new(
            ErrorKind::InvalidInput,
            format!("invalid node name {name:?}"),
        ));
    }
    w.write_all(&HELLO_MAGIC)?;
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name.as_bytes())
}

/// Reads and validates a hello frame, returning the node name.
pub fn read_hello(r: &mut impl Read) -> std::io::Result<String> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != HELLO_MAGIC {
        return Err(Error::new(ErrorKind::InvalidData, "bad hello magic"));
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_NODE_NAME {
        return Err(Error::new(ErrorKind::InvalidData, "bad hello name length"));
    }
    let mut name = vec![0u8; len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name)
        .map_err(|_| Error::new(ErrorKind::InvalidData, "node name not UTF-8"))?;
    if !valid_node_name(&name) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("invalid node name {name:?}"),
        ));
    }
    Ok(name)
}

/// Reads the raw bytes of a trace file header from the stream: the fixed
/// prefix, then exactly the registry text it declares. Returns the complete
/// header bytes, decodable with `FileHeader::decode` and reusable verbatim
/// as the header of every store shard.
pub fn read_header_bytes(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut fixed = [0u8; FIXED_HEADER_BYTES];
    r.read_exact(&mut fixed)?;
    let registry_len = u64::from_le_bytes(
        fixed[REGISTRY_LEN_OFFSET..REGISTRY_LEN_OFFSET + 8]
            .try_into()
            .expect("8-byte slice"),
    );
    if registry_len > MAX_REGISTRY_BYTES as u64 {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "stream header declares an oversized registry",
        ));
    }
    let mut bytes = Vec::with_capacity(FIXED_HEADER_BYTES + registry_len as usize);
    bytes.extend_from_slice(&fixed);
    let mut registry = vec![0u8; registry_len as usize];
    r.read_exact(&mut registry)?;
    bytes.extend_from_slice(&registry);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_format::EventRegistry;
    use ktrace_io::FileHeader;
    use std::io::Cursor;

    #[test]
    fn hello_round_trips() {
        let mut wire = Vec::new();
        write_hello(&mut wire, "web-3.rack_9").unwrap();
        assert_eq!(read_hello(&mut Cursor::new(&wire)).unwrap(), "web-3.rack_9");
    }

    #[test]
    fn bad_names_rejected_on_both_sides() {
        for bad in ["", ".hidden", "-flag", "a/b", "a b", &"x".repeat(129)] {
            assert!(!valid_node_name(bad), "{bad:?} should be invalid");
            assert!(write_hello(&mut Vec::new(), bad).is_err());
        }
        assert!(valid_node_name("node-0"));
        // A forged on-wire name fails the read side too.
        let mut wire = Vec::new();
        wire.extend_from_slice(&HELLO_MAGIC);
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"a/b");
        assert!(read_hello(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = Vec::new();
        write_hello(&mut wire, "n").unwrap();
        wire[0] ^= 0xff;
        assert!(read_hello(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn header_bytes_round_trip_through_decode() {
        let header = FileHeader {
            ncpus: 2,
            buffer_words: 64,
            ticks_per_sec: 1_000_000_000,
            clock_synchronized: true,
            registry: EventRegistry::with_builtin(),
        };
        let encoded = header.encode();
        let read = read_header_bytes(&mut Cursor::new(&encoded)).unwrap();
        assert_eq!(read, encoded);
        let (decoded, used) = FileHeader::decode(&read).unwrap();
        assert_eq!(used, read.len());
        assert_eq!(decoded.record_size(), header.record_size());
    }

    #[test]
    fn oversized_registry_rejected() {
        let mut fixed = vec![0u8; 40];
        fixed[..8].copy_from_slice(b"KTRACE01");
        fixed[32..40].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(read_header_bytes(&mut Cursor::new(&fixed)).is_err());
    }
}
