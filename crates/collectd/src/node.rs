//! The client half: a node is any process that speaks the hello frame and
//! then hands its socket to a [`TraceSession`] as the sink. The session
//! neither knows nor cares that its sink is a fleet collector — the wire
//! format is the file format, so [`connect`] plus the ordinary builder is
//! the entire client.
//!
//! [`run_ossim_node`] is the batteries-included driver: one call connects,
//! traces an ossim [`NodeSpec`] workload through the socket, and reports
//! both halves (what the simulation did, what the session shipped).

use crate::proto;
use ktrace_core::TraceConfig;
use ktrace_io::{SessionError, SessionStats, TraceSession};
use ktrace_ossim::machine::RunReport;
use ktrace_ossim::{KTracer, NodeSpec};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Connects to a collector and introduces this node by name. The returned
/// stream is positioned exactly where a [`TraceSession`] sink should start
/// writing (header next).
pub fn connect(addr: impl ToSocketAddrs, name: &str) -> std::io::Result<TcpStream> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    proto::write_hello(&mut conn, name)?;
    Ok(conn)
}

/// Why a node run failed.
#[derive(Debug)]
pub enum NodeError {
    /// The collector could not be reached (or refused the hello).
    Connect(std::io::Error),
    /// The trace session could not start.
    Session(SessionError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Connect(e) => write!(f, "cannot reach collector: {e}"),
            NodeError::Session(e) => write!(f, "cannot start node session: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// What one node run did: the simulation half and the shipping half.
#[derive(Debug)]
pub struct NodeReport {
    /// The ossim machine's run report.
    pub run: RunReport,
    /// The trace session's final accounting.
    pub session: SessionStats,
}

/// Connects to the collector at `addr`, then runs `spec`'s workload on an
/// ossim machine traced straight into the socket. `heartbeat` enables
/// periodic `CONTROL`/`HEARTBEAT` telemetry in the stream — the collector's
/// health view is built from those, so live nodes should pass one.
pub fn run_ossim_node(
    addr: impl ToSocketAddrs,
    spec: &NodeSpec,
    heartbeat: Option<Duration>,
) -> Result<NodeReport, NodeError> {
    let conn = connect(addr, &spec.name).map_err(NodeError::Connect)?;
    let mut builder = TraceSession::builder()
        .geometry(TraceConfig::small())
        .ncpus(spec.ncpus)
        .register(ktrace_events::register_all);
    if let Some(every) = heartbeat {
        builder = builder.heartbeat(every);
    }
    let session = builder.start(conn).map_err(NodeError::Session)?;
    let tracer = Arc::new(KTracer::new(session.logger().clone()));
    let run = spec.run(tracer);
    let stats = session.finish();
    Ok(NodeReport {
        run,
        session: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, CollectorConfig};
    use ktrace_testutil::{ByteReceiver, TempDir};

    #[test]
    fn connect_sends_the_hello_before_anything_else() {
        let receiver = ByteReceiver::spawn();
        let conn = connect(receiver.addr(), "web-3").unwrap();
        drop(conn);
        let bytes = receiver.join();
        let name = proto::read_hello(&mut std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(name, "web-3");
    }

    #[test]
    fn an_ossim_node_streams_a_full_run() {
        let tmp = TempDir::new("node-run");
        let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(tmp.path())).unwrap();
        let spec = NodeSpec::new("sim-0", 2);
        let report = run_ossim_node(
            collector.local_addr(),
            &spec,
            Some(Duration::from_millis(5)),
        )
        .unwrap();
        assert!(report.run.tasks_completed > 0);
        assert!(report.session.records_written > 0);
        // Give the queues a moment to drain, then reconcile.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let summary = collector.summary();
            let n = summary.node("sim-0");
            if n.is_some_and(|n| {
                n.records_stored + n.records_dropped >= report.session.records_written
            }) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "collector never drained sim-0: {summary:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let summary = collector.shutdown();
        let n = summary.node("sim-0").expect("node registered");
        assert!(n.reconciled(), "{n:?}");
        assert_eq!(n.records_received, report.session.records_written);
        assert!(n.heartbeats_seen > 0, "heartbeats rode the stream");
    }

    #[test]
    fn refused_connections_surface_as_connect_errors() {
        // Bind-then-drop yields an address nothing listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let spec = NodeSpec::new("sim-1", 1);
        match run_ossim_node(addr, &spec, None) {
            Err(NodeError::Connect(_)) => {}
            other => panic!("expected Connect error, got {other:?}"),
        }
    }
}
