//! Loom model of the reservation CAS path (`CpuRegion::reserve`, the
//! paper's Fig. 2 `traceReserve`), exploring every interleaving of two
//! concurrent loggers.
//!
//! Built only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ktrace-core --test loom_reserve --release
//! ```
//!
//! The model mirrors the production loop structurally — unwrapped index,
//! fast-path CAS within a buffer, boundary slow path claiming anchor words —
//! and checks the three properties the lockless design promises:
//!
//! 1. **No overlap**: every claimed word interval is disjoint.
//! 2. **Alignment**: no claim crosses a buffer boundary, and each buffer
//!    begins with exactly one anchor claim.
//! 3. **Buffer order = timestamp order** (§3.1): because the timestamp is
//!    re-read on every CAS attempt, claims ordered by start index carry
//!    non-decreasing timestamps.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Words per modeled buffer (small so two threads cross a boundary).
const BW: u64 = 8;
/// Modeled anchor size (header + full timestamp word).
const ANCHOR: u64 = 2;

#[derive(Debug, Clone, Copy)]
struct Claim {
    start: u64,
    len: u64,
    ts: u64,
    anchor: bool,
}

/// The Fig. 2 reservation loop over a loom atomic: returns (start, ts) and
/// records the anchor claim when the boundary slow path wins.
///
/// The model runs at `SeqCst` where production uses `Relaxed` loads +
/// `AcqRel` CAS: the timestamp-ordering property leans on the platform's
/// total store order (and on real clocks being globally monotonic), and the
/// model checks the algorithm, not the weakest theoretical C11 execution.
fn reserve(
    index: &AtomicU64,
    clock: &AtomicU64,
    total: u64,
    claims: &Mutex<Vec<Claim>>,
) -> (u64, u64) {
    loop {
        let old = index.load(Ordering::SeqCst);
        let pos = old % BW;
        // Re-determine the timestamp during each attempt (§3.1).
        let ts = clock.fetch_add(1, Ordering::SeqCst);
        if pos != 0 && pos + total <= BW {
            if index
                .compare_exchange(old, old + total, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return (old, ts);
            }
            continue;
        }
        // Boundary slow path: claim the next buffer's anchor + the event.
        let next_seq = if pos == 0 { old / BW } else { old / BW + 1 };
        let base = next_seq * BW;
        let new = base + ANCHOR + total;
        if index
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            claims.lock().unwrap().push(Claim {
                start: base,
                len: ANCHOR,
                ts,
                anchor: true,
            });
            return (base + ANCHOR, ts);
        }
    }
}

#[test]
fn reservation_claims_are_disjoint_aligned_and_time_ordered() {
    loom::model(|| {
        let index = Arc::new(AtomicU64::new(0));
        let clock = Arc::new(AtomicU64::new(1));
        let claims = Arc::new(Mutex::new(Vec::new()));

        let mut handles = Vec::new();
        for event_words in [3u64, 2] {
            let (index, clock, claims) = (index.clone(), clock.clone(), claims.clone());
            handles.push(thread::spawn(move || {
                for _ in 0..2 {
                    let (start, ts) = reserve(&index, &clock, event_words, &claims);
                    claims.lock().unwrap().push(Claim {
                        start,
                        len: event_words,
                        ts,
                        anchor: false,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let mut claims = Arc::try_unwrap(claims).unwrap().into_inner().unwrap();
        claims.sort_by_key(|c| c.start);

        for w in claims.windows(2) {
            // 1. Disjoint intervals.
            assert!(
                w[0].start + w[0].len <= w[1].start,
                "overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
            // 3. Buffer order is timestamp order.
            assert!(
                w[0].ts <= w[1].ts,
                "time regression: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for c in &claims {
            // 2a. Nothing crosses an alignment boundary.
            assert!(c.start % BW + c.len <= BW, "boundary crossed: {c:?}");
        }
        // 2b. Every touched buffer starts with exactly one anchor claim.
        let touched: std::collections::BTreeSet<u64> =
            claims.iter().map(|c| c.start / BW).collect();
        for seq in touched {
            let anchors = claims
                .iter()
                .filter(|c| c.anchor && c.start == seq * BW)
                .count();
            assert_eq!(anchors, 1, "buffer {seq} must have exactly one anchor");
            assert!(
                !claims.iter().any(|c| !c.anchor && c.start == seq * BW),
                "buffer {seq} must not start with a data event"
            );
        }
    });
}
