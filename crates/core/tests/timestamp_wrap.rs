//! The 32-bit timestamp wrap (§3.2): headers store only the low 32 bits of
//! the clock; per-buffer anchors plus in-buffer wrap extension must
//! reconstruct full 64-bit times across any number of 2³² boundaries.

use ktrace_clock::ManualClock;
use ktrace_core::{parse_buffer, TraceConfig, TraceLogger};
use ktrace_format::MajorId;
use std::sync::Arc;

fn collect_times(logger: &TraceLogger) -> Vec<u64> {
    logger.flush_all();
    let mut times = Vec::new();
    let mut hint = None;
    while let Some(b) = logger.take_buffer(0) {
        assert!(b.complete);
        let parsed = parse_buffer(0, b.seq, &b.words, hint);
        assert!(parsed.clean(), "{:?}", parsed.notes);
        hint = parsed.end_time;
        times.extend(parsed.data_events().map(|e| e.time));
    }
    times
}

#[test]
fn full_times_survive_multiple_wraps() {
    // Events spaced ~1.4 billion ticks apart: a 32-bit stamp wraps every
    // ~3 events, across several buffers (drained incrementally).
    let clock = Arc::new(ManualClock::new(5_000_000_000, 0));
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock.clone())
        .ncpus(1)
        .build()
        .unwrap();
    let handle = logger.handle(0).unwrap();
    let mut expected = Vec::new();
    let mut t = 5_000_000_000u64;
    let mut times = Vec::new();
    for i in 0..200u64 {
        clock.set(t);
        assert!(handle.log1(MajorId::TEST, 1, i));
        expected.push(t);
        t += 1_400_000_000;
        if i % 30 == 29 {
            times.extend(collect_times(&logger));
        }
    }
    times.extend(collect_times(&logger));
    assert_eq!(times, expected, "full 64-bit times reconstructed exactly");
    // Sanity: the span genuinely crossed many 2^32 boundaries.
    assert!(expected.last().unwrap() - expected[0] > 60 * (1u64 << 32));
}

#[test]
fn anchor_reseeds_after_long_idle_gap() {
    // A gap longer than 2^32 between the last event of one buffer and the
    // first of the next is only recoverable because every buffer carries a
    // full-width anchor.
    let clock = Arc::new(ManualClock::new(1_000, 0));
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock.clone())
        .ncpus(1)
        .build()
        .unwrap();
    let handle = logger.handle(0).unwrap();

    assert!(handle.log1(MajorId::TEST, 1, 1));
    logger.flush_all(); // close buffer 0
    let big_jump = 1_000 + 10 * (1u64 << 32) + 77;
    clock.set(big_jump);
    assert!(handle.log1(MajorId::TEST, 2, 2)); // opens buffer 1, new anchor

    let times = collect_times(&logger);
    assert_eq!(times, vec![1_000, big_jump]);
}
