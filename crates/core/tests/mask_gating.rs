//! Property: the logger never emits an event for a masked-off major — the
//! fast-path mask check in `TraceLogger::log` really gates, for every major
//! and any payload — and re-enabling restores logging.

use ktrace_clock::ManualClock;
use ktrace_core::{TraceConfig, TraceLogger};
use ktrace_format::MajorId;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn masked_off_majors_are_never_logged(
        raws in prop::collection::vec(1u8..64, 1..8),
        payload in prop::collection::vec(any::<u64>(), 0..4),
    ) {
        let logger =
            TraceLogger::builder().geometry(TraceConfig::small()).clock(Arc::new(ManualClock::new(1, 1))).ncpus(1).build().unwrap();
        let h = logger.handle(0).unwrap();

        for &raw in &raws {
            let id = MajorId::new(raw).unwrap();
            logger.mask().disable(id);
            prop_assert!(!h.log_slice(id, 1, &payload), "major {raw} logged while disabled");
        }
        prop_assert_eq!(logger.stats().events_logged, 0);

        // Dynamic re-enablement (paper goal 4): the same call logs again.
        let id = MajorId::new(raws[0]).unwrap();
        logger.mask().enable(id);
        prop_assert!(h.log_slice(id, 1, &payload));
        prop_assert_eq!(logger.stats().events_logged, 1);
    }
}
