//! Property-based stream roundtrip: any sequence of events logged through
//! the lockless logger is recovered exactly — same order, same payloads —
//! with clean buffer chains, for arbitrary buffer geometries.

use ktrace_clock::ManualClock;
use ktrace_core::{parse_buffer, Mode, TraceConfig, TraceLogger};
use ktrace_format::MajorId;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct EventSpec {
    major: u8,
    minor: u16,
    payload: Vec<u64>,
}

fn event_strategy(max_payload: usize) -> impl Strategy<Value = EventSpec> {
    (
        1u8..64,
        any::<u16>(),
        prop::collection::vec(any::<u64>(), 0..=max_payload),
    )
        .prop_map(|(major, minor, payload)| EventSpec {
            major,
            minor,
            payload,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn logged_stream_roundtrips_exactly(
        buffer_words_pow in 5u32..10,       // 32..512-word buffers
        nbuf_pow in 1u32..4,                // 2..8 buffers per region
        events in prop::collection::vec(event_strategy(12), 1..300),
    ) {
        let config = TraceConfig {
            buffer_words: 1usize << buffer_words_pow,
            buffers_per_cpu: 1usize << nbuf_pow,
            mode: Mode::Stream,
        };
        let logger = TraceLogger::builder().geometry(config).clock(Arc::new(ManualClock::new(1, 1))).ncpus(1).build().unwrap();
        let handle = logger.handle(0).unwrap();

        // Log, draining as we go so nothing drops; remember what was logged.
        let mut logged: Vec<&EventSpec> = Vec::new();
        let mut buffers = Vec::new();
        for spec in &events {
            let major = MajorId::new(spec.major).unwrap();
            if spec.payload.len() <= config.max_payload_words()
                && handle.log_slice(major, spec.minor, &spec.payload)
            {
                logged.push(spec);
            }
            while let Some(b) = logger.take_buffer(0) {
                buffers.push(b);
            }
        }
        logger.flush_all();
        while let Some(b) = logger.take_buffer(0) {
            buffers.push(b);
        }

        // Decode everything back.
        let mut recovered = Vec::new();
        let mut hint = None;
        let mut last_time = 0u64;
        for b in &buffers {
            prop_assert!(b.complete, "seq {} garbled", b.seq);
            let parsed = parse_buffer(0, b.seq, &b.words, hint);
            prop_assert!(parsed.clean(), "{:?}", parsed.notes);
            hint = parsed.end_time;
            for e in parsed.events {
                prop_assert!(e.time >= last_time, "time went backwards");
                last_time = e.time;
                if !e.is_control() {
                    recovered.push(e);
                }
            }
        }

        prop_assert_eq!(recovered.len(), logged.len());
        for (got, want) in recovered.iter().zip(&logged) {
            prop_assert_eq!(got.major.raw(), want.major);
            prop_assert_eq!(got.minor, want.minor);
            prop_assert_eq!(&got.payload, &want.payload);
        }
    }

    #[test]
    fn flight_recorder_suffix_is_always_recoverable(
        events in prop::collection::vec(event_strategy(6), 50..400),
    ) {
        let config = TraceConfig::small().flight_recorder();
        let logger = TraceLogger::builder().geometry(config).clock(Arc::new(ManualClock::new(1, 1))).ncpus(1).build().unwrap();
        let handle = logger.handle(0).unwrap();
        let mut accepted = Vec::new();
        for spec in &events {
            let major = MajorId::new(spec.major).unwrap();
            if handle.log_slice(major, spec.minor, &spec.payload) {
                accepted.push(spec);
            }
        }
        // Whatever survives the circular overwrite must be a *suffix* of
        // what was logged, in order, undamaged.
        let dump = logger.flight_dump(usize::MAX, None);
        prop_assert!(!dump.is_empty());
        prop_assert!(dump.len() <= accepted.len());
        let offset = accepted.len() - dump.len();
        for (got, want) in dump.iter().zip(&accepted[offset..]) {
            prop_assert_eq!(got.major.raw(), want.major);
            prop_assert_eq!(got.minor, want.minor);
            prop_assert_eq!(&got.payload, &want.payload);
        }
    }
}
