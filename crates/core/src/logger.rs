//! The user-facing logging API.
//!
//! [`TraceLogger`] owns one [`CpuRegion`](crate::region::CpuRegion) per
//! logical CPU (cache-padded so reservation CASes on different CPUs never
//! share a line), the single [`TraceMask`] consulted by every log statement,
//! and the self-describing [`EventRegistry`]. [`CpuHandle`] is the analogue
//! of K42's user-mapped per-processor control structure: a cheap, cloneable
//! binding of one thread to one CPU's buffers, through which events are
//! logged with no syscall and no lock.
//!
//! The `log*` fast paths check the mask first and are `#[inline]`, so a
//! disabled major costs a relaxed load, an AND, and a branch — the Rust
//! rendering of the paper's "4 machine instructions" (measured in E3).

use crate::config::{Mode, TraceConfig};
use crate::error::CoreError;
use crate::reader::{parse_buffer, GarbleNote, RawEvent};
use crate::region::{CompletedBuffer, CpuRegion, RegionSnapshot};
use crate::sample::SampleGate;
use crossbeam::utils::CachePadded;
use ktrace_clock::ClockSource;
use ktrace_format::ids::control;
use ktrace_format::{EventDescriptor, EventRegistry, FieldValue, MajorId, MinorId, TraceMask};
use ktrace_telemetry::Telemetry;
use parking_lot::RwLock;
use std::sync::Arc;

struct Shared {
    config: TraceConfig,
    mask: TraceMask,
    sample: SampleGate,
    regions: Box<[CachePadded<CpuRegion>]>,
    registry: RwLock<EventRegistry>,
    tel: Arc<Telemetry>,
}

/// The unified, per-CPU, lockless trace logger.
///
/// Cloning is cheap (an `Arc` bump); clones share buffers, mask, and
/// registry.
#[derive(Clone)]
pub struct TraceLogger {
    shared: Arc<Shared>,
}

/// Aggregate logger statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoggerStats {
    /// Events successfully logged across all CPUs.
    pub events_logged: u64,
    /// Events dropped to consumer overrun and not yet marked in-stream.
    pub dropped_pending: u64,
    /// Total words reserved across all CPUs (fillers and anchors included).
    pub words_reserved: u64,
    /// Buffers released by consumers.
    pub buffers_consumed: u64,
}

/// The result of a crash-resilient flight-recorder dump
/// ([`TraceLogger::dump_last`]): the surviving events plus an account of what
/// the tear cost.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The most recent events, time-sorted, control events excluded.
    pub events: Vec<RawEvent>,
    /// Buffers examined across all CPU regions.
    pub buffers_scanned: usize,
    /// Buffers whose event chain was damaged (decoded up to the tear).
    pub garbled_buffers: usize,
    /// Every anomaly, attributed to `(cpu, seq)`.
    pub notes: Vec<(usize, u64, GarbleNote)>,
}

impl FlightDump {
    /// True if every scanned buffer decoded cleanly.
    pub fn clean(&self) -> bool {
        self.notes.is_empty()
    }
}

impl TraceLogger {
    /// Fluent construction with named steps and defaults — see
    /// [`LoggerBuilder`](crate::builder::LoggerBuilder).
    pub fn builder() -> crate::builder::LoggerBuilder {
        crate::builder::LoggerBuilder::default()
    }

    /// Shared constructor behind [`TraceLogger::builder`].
    pub(crate) fn construct(
        config: TraceConfig,
        clock: Arc<dyn ClockSource>,
        ncpus: usize,
    ) -> Result<TraceLogger, CoreError> {
        config.validate()?;
        if ncpus == 0 {
            return Err(CoreError::BadConfig("ncpus must be at least 1"));
        }
        let tel = Arc::new(Telemetry::new(ncpus));
        let regions = (0..ncpus)
            .map(|cpu| {
                CachePadded::new(CpuRegion::with_telemetry(
                    config,
                    clock.clone(),
                    cpu,
                    tel.clone(),
                    cpu,
                ))
            })
            .collect();
        Ok(TraceLogger {
            shared: Arc::new(Shared {
                config,
                mask: TraceMask::all_enabled(),
                sample: SampleGate::new(),
                regions,
                registry: RwLock::new(EventRegistry::with_builtin()),
                tel,
            }),
        })
    }

    /// Number of per-CPU regions.
    pub fn ncpus(&self) -> usize {
        self.shared.regions.len()
    }

    /// The buffer geometry.
    pub fn config(&self) -> TraceConfig {
        self.shared.config
    }

    /// The trace mask gating all majors (shared by every handle).
    pub fn mask(&self) -> &TraceMask {
        &self.shared.mask
    }

    /// The per-major sampling gate consulted (after the mask) by every
    /// `log*` fast path. The adaptive controller narrows rates here when
    /// shedding detail; everything defaults to rate 1 (keep all).
    pub fn sampling(&self) -> &SampleGate {
        &self.shared.sample
    }

    /// Registers a self-describing event descriptor.
    pub fn register_event(&self, major: MajorId, minor: MinorId, desc: EventDescriptor) {
        self.shared.registry.write().register(major, minor, desc);
    }

    /// A snapshot of the event registry (for embedding into trace files).
    pub fn registry(&self) -> EventRegistry {
        self.shared.registry.read().clone()
    }

    /// A handle binding the calling thread to `cpu`'s buffers.
    pub fn handle(&self, cpu: usize) -> Result<CpuHandle, CoreError> {
        if cpu >= self.ncpus() {
            return Err(CoreError::BadCpu {
                cpu,
                ncpus: self.ncpus(),
            });
        }
        Ok(CpuHandle {
            shared: self.shared.clone(),
            cpu: cpu as u32,
        })
    }

    #[cfg_attr(feature = "trace-off", allow(dead_code))]
    fn region(&self, cpu: usize) -> &CpuRegion {
        &self.shared.regions[cpu]
    }

    /// Logs an event on `cpu` if its major is enabled. Returns true if
    /// logged. Errors (overrun, oversized) read as "not logged".
    #[inline]
    pub fn log(&self, cpu: usize, major: MajorId, minor: MinorId, payload: &[u64]) -> bool {
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpu, major, minor, payload);
            false
        }
        #[cfg(not(feature = "trace-off"))]
        {
            if !self.shared.mask.is_enabled(major) || !self.shared.sample.admit(major) {
                if cpu < self.ncpus() {
                    self.shared.tel.cpu(cpu).tally_masked();
                }
                return false;
            }
            self.region(cpu).log_raw(major, minor, payload).is_ok()
        }
    }

    /// Like [`log`](TraceLogger::log) but surfacing the error cause.
    /// A disabled major is `Ok(false)`; a logged event is `Ok(true)`.
    pub fn try_log(
        &self,
        cpu: usize,
        major: MajorId,
        minor: MinorId,
        payload: &[u64],
    ) -> Result<bool, CoreError> {
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpu, major, minor, payload);
            Ok(false)
        }
        #[cfg(not(feature = "trace-off"))]
        {
            if cpu >= self.ncpus() {
                return Err(CoreError::BadCpu {
                    cpu,
                    ncpus: self.ncpus(),
                });
            }
            if !self.shared.mask.is_enabled(major) || !self.shared.sample.admit(major) {
                self.shared.tel.cpu(cpu).tally_masked();
                return Ok(false);
            }
            self.region(cpu)
                .log_raw(major, minor, payload)
                .map(|()| true)
        }
    }

    /// Encodes `values` according to the registered descriptor's field spec
    /// and logs the event. Events with string fields go through here; hot
    /// fixed-arity events should use the `logN` fast paths.
    pub fn log_fields(
        &self,
        cpu: usize,
        major: MajorId,
        minor: MinorId,
        values: &[FieldValue],
    ) -> Result<bool, CoreError> {
        // ktrace-lint: allow(hot-path) — the registry lookup under RwLock is
        // the documented slow path for string-bearing events.
        if !self.shared.mask.is_enabled(major) {
            if cpu < self.ncpus() {
                self.shared.tel.cpu(cpu).tally_masked();
            }
            return Ok(false);
        }
        let words = {
            let registry = self.shared.registry.read();
            match registry.lookup(major, minor) {
                Some(desc) => desc
                    .spec
                    .encode(values)
                    .map_err(|_| CoreError::BadConfig("field values do not match spec"))?,
                None => values.iter().map(FieldValue::as_int).collect(),
            }
        };
        self.try_log(cpu, major, minor, &words)
    }

    /// Force-closes `cpu`'s current partial buffer so it can be drained.
    pub fn flush_cpu(&self, cpu: usize) -> bool {
        self.region(cpu).flush()
    }

    /// Flushes every CPU.
    pub fn flush_all(&self) {
        for cpu in 0..self.ncpus() {
            self.flush_cpu(cpu);
        }
    }

    /// Takes the oldest completed buffer from `cpu` (stream mode).
    pub fn take_buffer(&self, cpu: usize) -> Option<CompletedBuffer> {
        self.region(cpu).take_buffer()
    }

    /// Takes every currently completed buffer from `cpu`.
    pub fn drain_cpu(&self, cpu: usize) -> Vec<CompletedBuffer> {
        std::iter::from_fn(|| self.take_buffer(cpu)).collect()
    }

    /// Flushes and drains every CPU, returning buffers grouped by CPU.
    pub fn drain_all(&self) -> Vec<Vec<CompletedBuffer>> {
        self.flush_all();
        (0..self.ncpus()).map(|cpu| self.drain_cpu(cpu)).collect()
    }

    /// Snapshots `cpu`'s region (flight-recorder inspection).
    pub fn snapshot(&self, cpu: usize) -> RegionSnapshot {
        self.region(cpu).snapshot()
    }

    /// The flight-recorder dump (§4.2): the most recent `last_n` events
    /// across all CPUs, optionally restricted to certain majors — mirroring
    /// the debugger hook that "has features to show only certain type of
    /// events and has control as to how many events it displays".
    ///
    /// Works in either mode; in stream mode it sees only undrained data.
    pub fn flight_dump(&self, last_n: usize, majors: Option<&[MajorId]>) -> Vec<RawEvent> {
        self.dump_last(last_n, majors).events
    }

    /// The crash-resilient flight dump: like
    /// [`flight_dump`](TraceLogger::flight_dump) but also reporting what was
    /// *lost* — garbled buffers (a CPU killed mid-reservation leaves a torn,
    /// uncommitted extent) are decoded up to the tear and the anomalies are
    /// returned alongside the surviving events, instead of being dropped
    /// silently. This is the dump a debugger takes after a crash (§4.2),
    /// where the tail of the stream is garbled by construction.
    pub fn dump_last(&self, last_n: usize, majors: Option<&[MajorId]>) -> FlightDump {
        let mut dump = FlightDump {
            events: Vec::new(),
            buffers_scanned: 0,
            garbled_buffers: 0,
            notes: Vec::new(),
        };
        for cpu in 0..self.ncpus() {
            let snap = self.snapshot(cpu);
            let mut hint = None;
            for seq in snap.oldest_seq()..=snap.current_seq() {
                if let Some(words) = snap.buffer(seq) {
                    let parsed = parse_buffer(cpu, seq, words, hint);
                    hint = parsed.end_time;
                    dump.buffers_scanned += 1;
                    if !parsed.notes.is_empty() {
                        dump.garbled_buffers += 1;
                        dump.notes
                            .extend(parsed.notes.into_iter().map(|n| (cpu, seq, n)));
                    }
                    dump.events.extend(parsed.events);
                }
            }
        }
        dump.events.retain(|e| !e.is_control());
        if let Some(keep) = majors {
            dump.events.retain(|e| keep.contains(&e.major));
        }
        dump.events.sort_by_key(|e| e.time);
        if dump.events.len() > last_n {
            dump.events.drain(..dump.events.len() - last_n);
        }
        dump
    }

    /// Fault injection: abandons a reservation of `total_words` on `cpu` —
    /// the killed-logger scenario of §3.1. See
    /// [`CpuRegion::abandon_reservation`](crate::region::CpuRegion::abandon_reservation).
    pub fn fault_abandon_reservation(&self, cpu: usize, total_words: usize) -> Option<u64> {
        self.region(cpu).abandon_reservation(total_words)
    }

    /// Fault injection: XORs `mask` into `cpu`'s region word at unwrapped
    /// index `at` (header tearing / payload flips).
    pub fn fault_corrupt_word(&self, cpu: usize, at: u64, mask: u64) {
        self.region(cpu).corrupt_word(at, mask);
    }

    /// Fault injection: skews `cpu`'s commit count for buffer slot `slot` by
    /// `delta` words — the "not enough / too much data" §3.1 anomalies.
    pub fn fault_desync_commit(&self, cpu: usize, slot: usize, delta: i64) {
        self.region(cpu).desync_commit(slot, delta);
    }

    /// The lock-free self-metrics registry shared by every region and handle.
    ///
    /// Snapshot it with [`Telemetry::snapshot`] for exposition
    /// (`ktrace-telemetry`'s Prometheus/JSON renderers, `ktrace-tools top`).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.tel
    }

    /// Logs a `CONTROL`/`HEARTBEAT` event on `cpu` carrying the current
    /// telemetry counter block *into the trace itself*, so post-processing
    /// can plot tracer health over trace time (schema:
    /// [`control::HEARTBEAT_METRICS`]).
    ///
    /// Heartbeats ride the same lockless reservation path as data events but
    /// are **not** counted in `events_logged` — the invariant `data events in
    /// file == events_logged - sink losses` stays exact. The mask does not
    /// gate CONTROL traffic.
    pub fn log_heartbeat(&self, cpu: usize) -> bool {
        #[cfg(feature = "trace-off")]
        {
            let _ = cpu;
            false
        }
        #[cfg(not(feature = "trace-off"))]
        {
            if cpu >= self.ncpus() {
                return false;
            }
            let payload = self.shared.tel.heartbeat_payload(cpu);
            let ok = self
                .region(cpu)
                .log_control(control::HEARTBEAT, &payload)
                .is_ok();
            if ok {
                self.shared.tel.sink().tally_heartbeat();
            }
            ok
        }
    }

    /// Logs an arbitrary `CONTROL` event on `cpu` — the audit channel the
    /// adaptive control plane uses for its `ANOMALY` / `MASK_ADJUST` /
    /// `SAMPLE_ADJUST` decisions, so every intervention is queryable
    /// post-hoc from the trace itself.
    ///
    /// Like heartbeats, audit events ride the lockless reservation path but
    /// are *not* counted in `events_logged`, and neither the mask nor the
    /// sampling gate applies to CONTROL traffic.
    pub fn log_control_event(&self, cpu: usize, minor: MinorId, payload: &[u64]) -> bool {
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpu, minor, payload);
            false
        }
        #[cfg(not(feature = "trace-off"))]
        {
            if cpu >= self.ncpus() {
                return false;
            }
            self.region(cpu).log_control(minor, payload).is_ok()
        }
    }

    /// Per-CPU ring occupancy: `(outstanding_words, capacity_words)` —
    /// words reserved but not yet released by the consumer, versus the total
    /// ring size. The live monitor (`ktrace-tools top`) renders this as a
    /// fill gauge; in flight-recorder mode nothing is ever consumed, so a
    /// full ring is the steady state.
    pub fn occupancy(&self, cpu: usize) -> (u64, u64) {
        let r: &CpuRegion = &self.shared.regions[cpu];
        let bw = self.shared.config.buffer_words as u64;
        let cap = bw * self.shared.config.buffers_per_cpu as u64;
        let outstanding = r.index().saturating_sub(r.buffers_consumed() * bw);
        (outstanding.min(cap), cap)
    }

    /// Aggregate statistics across all CPUs.
    pub fn stats(&self) -> LoggerStats {
        let mut s = LoggerStats::default();
        for r in self.shared.regions.iter() {
            s.events_logged += r.events_logged();
            s.dropped_pending += r.dropped_pending();
            s.words_reserved += r.index();
            s.buffers_consumed += r.buffers_consumed();
        }
        s
    }

    /// Whether this logger streams to a consumer or runs as a flight
    /// recorder.
    pub fn mode(&self) -> Mode {
        self.shared.config.mode
    }
}

impl std::fmt::Debug for TraceLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLogger")
            .field("ncpus", &self.ncpus())
            .field("config", &self.shared.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A thread's binding to one CPU's trace buffers.
///
/// The K42 analogue is the per-processor trace control structure mapped into
/// the application's address space: log calls through a handle touch only
/// that CPU's cache lines.
#[derive(Clone)]
pub struct CpuHandle {
    shared: Arc<Shared>,
    cpu: u32,
}

macro_rules! arity_logger {
    ($(#[$doc:meta])* $name:ident($($arg:ident),*)) => {
        $(#[$doc])*
        #[inline]
        #[allow(clippy::too_many_arguments)]
        pub fn $name(&self, major: MajorId, minor: MinorId $(, $arg: u64)*) -> bool {
            #[cfg(feature = "trace-off")]
            {
                let _ = (major, minor $(, $arg)*);
                false
            }
            #[cfg(not(feature = "trace-off"))]
            {
                if !self.shared.mask.is_enabled(major) || !self.shared.sample.admit(major) {
                    self.shared.tel.cpu(self.cpu as usize).tally_masked();
                    return false;
                }
                let payload = [$($arg),*];
                self.region().log_raw(major, minor, &payload).is_ok()
            }
        }
    };
}

impl CpuHandle {
    #[inline]
    fn region(&self) -> &CpuRegion {
        &self.shared.regions[self.cpu as usize]
    }

    /// The CPU this handle is bound to.
    pub fn cpu(&self) -> usize {
        self.cpu as usize
    }

    /// The shared trace mask.
    #[inline]
    pub fn mask(&self) -> &TraceMask {
        &self.shared.mask
    }

    /// Logs an event with an arbitrary payload slice.
    #[inline]
    pub fn log_slice(&self, major: MajorId, minor: MinorId, payload: &[u64]) -> bool {
        #[cfg(feature = "trace-off")]
        {
            let _ = (major, minor, payload);
            false
        }
        #[cfg(not(feature = "trace-off"))]
        {
            if !self.shared.mask.is_enabled(major) || !self.shared.sample.admit(major) {
                self.shared.tel.cpu(self.cpu as usize).tally_masked();
                return false;
            }
            self.region().log_raw(major, minor, payload).is_ok()
        }
    }

    arity_logger!(
        /// Logs a payload-less event (the cheapest kind).
        log0()
    );
    arity_logger!(
        /// Logs a 1-word event — the paper's 91-cycle case.
        log1(a)
    );
    arity_logger!(
        /// Logs a 2-word event.
        log2(a, b)
    );
    arity_logger!(
        /// Logs a 3-word event.
        log3(a, b, c)
    );
    arity_logger!(
        /// Logs a 4-word event.
        log4(a, b, c, d)
    );
    arity_logger!(
        /// Logs a 5-word event.
        log5(a, b, c, d, e)
    );
    arity_logger!(
        /// Logs a 6-word event.
        log6(a, b, c, d, e, g)
    );

    /// Fault injection: abandons a reservation of `total_words` on this
    /// handle's CPU — the §3.1 killed-logger scenario, used by crash
    /// injection to tear the stream exactly where a dying CPU would.
    pub fn fault_abandon_reservation(&self, total_words: usize) -> Option<u64> {
        self.shared.regions[self.cpu as usize].abandon_reservation(total_words)
    }

    /// Logs an event whose payload is built from descriptor field values
    /// (convenient for events with strings).
    pub fn log_fields(
        &self,
        major: MajorId,
        minor: MinorId,
        values: &[FieldValue],
    ) -> Result<bool, CoreError> {
        // ktrace-lint: allow(hot-path) — delegates to the slow path above.
        TraceLogger {
            shared: self.shared.clone(),
        }
        .log_fields(self.cpu(), major, minor, values)
    }
}

impl CpuHandle {
    /// Derives a handle that may only log the given major classes.
    ///
    /// The paper's §5 future work scopes tracing per application ("different
    /// users may not desire to have information about their behavior
    /// available to other users… we intend to map in different buffers to
    /// user applications that do not have sufficient privileges"). In a
    /// single address space the writer-side half of that is a capability:
    /// hand an untrusted component a [`RestrictedHandle`] and it can emit
    /// only into its allowed classes — reader-side filtering (the mask, the
    /// major filters on dumps and listings) covers the rest.
    pub fn restricted(&self, majors: &[MajorId]) -> RestrictedHandle {
        let mut allowed = 0u64;
        for m in majors {
            allowed |= m.bit();
        }
        RestrictedHandle {
            inner: self.clone(),
            allowed,
        }
    }
}

/// A [`CpuHandle`] limited to a fixed set of major classes (see
/// [`CpuHandle::restricted`]). Logging outside the set returns `false`
/// without touching the buffers.
#[derive(Clone)]
pub struct RestrictedHandle {
    inner: CpuHandle,
    allowed: u64,
}

impl RestrictedHandle {
    /// The CPU this handle is bound to.
    pub fn cpu(&self) -> usize {
        self.inner.cpu()
    }

    /// True if this handle may log `major` (the trace mask still applies on
    /// top).
    pub fn allows(&self, major: MajorId) -> bool {
        self.allowed & major.bit() != 0
    }

    /// Logs an event if the major is within this handle's grant.
    #[inline]
    pub fn log_slice(&self, major: MajorId, minor: MinorId, payload: &[u64]) -> bool {
        if !self.allows(major) {
            return false;
        }
        self.inner.log_slice(major, minor, payload)
    }

    /// Logs a 1-word event if permitted.
    #[inline]
    pub fn log1(&self, major: MajorId, minor: MinorId, a: u64) -> bool {
        self.log_slice(major, minor, &[a])
    }

    /// Logs a 2-word event if permitted.
    #[inline]
    pub fn log2(&self, major: MajorId, minor: MinorId, a: u64, b: u64) -> bool {
        self.log_slice(major, minor, &[a, b])
    }
}

impl std::fmt::Debug for RestrictedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestrictedHandle")
            .field("cpu", &self.inner.cpu)
            .field("allowed", &format_args!("{:#018x}", self.allowed))
            .finish()
    }
}

impl std::fmt::Debug for CpuHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuHandle").field("cpu", &self.cpu).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_clock::{ManualClock, SyncClock};

    fn logger(ncpus: usize) -> TraceLogger {
        TraceLogger::builder()
            .geometry(TraceConfig::small())
            .clock(Arc::new(ManualClock::new(1, 1)))
            .ncpus(ncpus)
            .build()
            .unwrap()
    }

    #[test]
    fn restricted_handles_scope_majors() {
        let l = logger(1);
        let h = l.handle(0).unwrap();
        let r = h.restricted(&[MajorId::USER, MajorId::LIB]);
        assert!(r.allows(MajorId::USER));
        assert!(!r.allows(MajorId::SCHED));
        assert!(r.log1(MajorId::USER, 1, 42));
        assert!(r.log2(MajorId::LIB, 2, 1, 2));
        assert!(!r.log_slice(MajorId::SCHED, 1, &[9]), "outside the grant");
        assert!(!r.log1(MajorId::CONTROL, 0, 0), "even control is denied");
        assert_eq!(l.stats().events_logged, 2);
        assert_eq!(r.cpu(), 0);
        // The trace mask still applies on top of the grant.
        l.mask().disable(MajorId::USER);
        assert!(!r.log1(MajorId::USER, 1, 43));
    }

    #[test]
    fn construction_validates() {
        assert!(TraceLogger::builder()
            .geometry(TraceConfig::small())
            .clock(Arc::new(SyncClock::new()))
            .ncpus(0)
            .build()
            .is_err());
        let mut bad = TraceConfig::small();
        bad.buffer_words = 100;
        assert!(TraceLogger::builder()
            .geometry(bad)
            .clock(Arc::new(SyncClock::new()))
            .ncpus(1)
            .build()
            .is_err());
        assert!(logger(4).handle(4).is_err());
        assert!(logger(4).handle(3).is_ok());
    }

    #[test]
    fn mask_gates_logging() {
        let l = logger(1);
        let h = l.handle(0).unwrap();
        l.mask().disable(MajorId::MEM);
        assert!(!h.log1(MajorId::MEM, 1, 42));
        assert!(h.log1(MajorId::PROC, 1, 42));
        l.mask().enable(MajorId::MEM);
        assert!(h.log1(MajorId::MEM, 1, 42));
        assert_eq!(l.stats().events_logged, 2);
    }

    #[test]
    fn arity_helpers_log_expected_payloads() {
        let l = logger(1);
        let h = l.handle(0).unwrap();
        h.log0(MajorId::TEST, 0);
        h.log1(MajorId::TEST, 1, 1);
        h.log2(MajorId::TEST, 2, 1, 2);
        h.log3(MajorId::TEST, 3, 1, 2, 3);
        h.log4(MajorId::TEST, 4, 1, 2, 3, 4);
        h.log5(MajorId::TEST, 5, 1, 2, 3, 4, 5);
        h.log6(MajorId::TEST, 6, 1, 2, 3, 4, 5, 6);
        l.flush_all();
        let bufs = l.drain_cpu(0);
        let events: Vec<RawEvent> = bufs
            .iter()
            .flat_map(|b| parse_buffer(0, b.seq, &b.words, None).events)
            .filter(|e| e.major == MajorId::TEST)
            .collect();
        assert_eq!(events.len(), 7);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.minor as usize, i);
            assert_eq!(e.payload.len(), i);
            assert_eq!(e.payload, (1..=i as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn log_fields_uses_registry_spec() {
        let l = logger(1);
        l.register_event(
            MajorId::PROC,
            1,
            EventDescriptor::new("TRACE_PROC_EXEC", "64 str", "pid %0[%d] runs %1[%s]").unwrap(),
        );
        let h = l.handle(0).unwrap();
        h.log_fields(
            MajorId::PROC,
            1,
            &[FieldValue::Int(6), FieldValue::Str("/shellServer".into())],
        )
        .unwrap();
        l.flush_all();
        let bufs = l.drain_cpu(0);
        let ev = bufs
            .iter()
            .flat_map(|b| parse_buffer(0, b.seq, &b.words, None).events)
            .find(|e| e.major == MajorId::PROC)
            .unwrap();
        let registry = l.registry();
        let desc = registry.lookup(MajorId::PROC, 1).unwrap();
        assert_eq!(
            desc.describe(&ev.payload).unwrap(),
            "pid 6 runs /shellServer"
        );
    }

    #[test]
    fn drain_all_collects_everything() {
        let l = logger(3);
        for cpu in 0..3 {
            let h = l.handle(cpu).unwrap();
            for i in 0..40 {
                h.log2(MajorId::TEST, cpu as u16, i, i * 2);
            }
        }
        let drained = l.drain_all();
        assert_eq!(drained.len(), 3);
        let mut per_cpu = [0usize; 3];
        for (cpu, bufs) in drained.iter().enumerate() {
            for b in bufs {
                assert!(b.complete);
                per_cpu[cpu] += parse_buffer(cpu, b.seq, &b.words, None)
                    .data_events()
                    .count();
            }
        }
        assert_eq!(per_cpu, [40, 40, 40]);
    }

    #[test]
    fn flight_dump_returns_most_recent_filtered() {
        let cfg = TraceConfig::small().flight_recorder();
        let l = TraceLogger::builder()
            .geometry(cfg)
            .clock(Arc::new(ManualClock::new(1, 1)))
            .ncpus(2)
            .build()
            .unwrap();
        let h0 = l.handle(0).unwrap();
        let h1 = l.handle(1).unwrap();
        for i in 0..2000u64 {
            h0.log1(MajorId::MEM, 1, i);
            h1.log1(MajorId::SCHED, 2, i);
        }
        let dump = l.flight_dump(50, None);
        assert_eq!(dump.len(), 50);
        assert!(dump.windows(2).all(|w| w[0].time <= w[1].time));
        // The dump holds the *most recent* events: high payload indices.
        assert!(dump.iter().all(|e| e.payload[0] > 1500));

        let mem_only = l.flight_dump(10, Some(&[MajorId::MEM]));
        assert!(mem_only.iter().all(|e| e.major == MajorId::MEM));
        assert_eq!(mem_only.len(), 10);
    }

    #[test]
    fn dump_last_reports_torn_reservation() {
        let cfg = TraceConfig::small().flight_recorder();
        let l = TraceLogger::builder()
            .geometry(cfg)
            .clock(Arc::new(ManualClock::new(1, 1)))
            .ncpus(1)
            .build()
            .unwrap();
        let h = l.handle(0).unwrap();
        for i in 0..10u64 {
            h.log1(MajorId::TEST, 0, i);
        }
        // A CPU dies mid-reservation: the extent is claimed, never written.
        let at = l.fault_abandon_reservation(0, 5).expect("reserve");
        for i in 0..10u64 {
            h.log1(MajorId::TEST, 1, i);
        }
        let dump = l.dump_last(64, None);
        assert!(!dump.clean());
        assert_eq!(dump.garbled_buffers, 1);
        assert!(dump.notes.iter().any(|(cpu, _, n)| *cpu == 0
            && matches!(n, GarbleNote::ZeroHeader { offset } if *offset as u64 == at)));
        // Events logged before the tear survive in the dump.
        assert!(dump
            .events
            .iter()
            .any(|e| e.major == MajorId::TEST && e.minor == 0));
        assert_eq!(dump.events, l.flight_dump(64, None));
    }

    #[test]
    fn try_log_reports_causes() {
        let l = logger(1);
        assert!(matches!(
            l.try_log(9, MajorId::TEST, 0, &[]),
            Err(CoreError::BadCpu { cpu: 9, ncpus: 1 })
        ));
        l.mask().disable(MajorId::MEM);
        assert_eq!(l.try_log(0, MajorId::MEM, 0, &[]), Ok(false));
        let huge = vec![0u64; 4096];
        assert!(matches!(
            l.try_log(0, MajorId::TEST, 0, &huge),
            Err(CoreError::EventTooLarge { .. })
        ));
    }

    #[test]
    fn telemetry_counts_logged_and_masked() {
        let l = logger(2);
        let h0 = l.handle(0).unwrap();
        let h1 = l.handle(1).unwrap();
        for i in 0..10 {
            h0.log1(MajorId::TEST, 0, i);
        }
        l.mask().disable(MajorId::MEM);
        for _ in 0..3 {
            h1.log1(MajorId::MEM, 0, 7);
        }
        assert!(!l.log(1, MajorId::MEM, 0, &[1]));
        let snap = l.telemetry().snapshot();
        assert_eq!(snap.per_cpu[0].events_logged, 10);
        assert_eq!(snap.per_cpu[0].events_masked, 0);
        assert_eq!(snap.per_cpu[1].events_logged, 0);
        assert_eq!(snap.per_cpu[1].events_masked, 4);
        assert_eq!(snap.events_logged(), l.stats().events_logged);
        // Reservation wait histogram saw every logged event.
        assert_eq!(
            ktrace_telemetry::hist_count(&snap.per_cpu[0].reserve_wait),
            10
        );
    }

    #[test]
    fn sampling_gate_decimates_after_the_mask() {
        let l = logger(1);
        let h = l.handle(0).unwrap();
        l.sampling().set_rate(MajorId::TEST, 4);
        for i in 0..100 {
            h.log1(MajorId::TEST, 0, i);
        }
        assert_eq!(l.stats().events_logged, 25, "1-in-4 kept");
        // Sampled-out events tally as masked: the telemetry invariant
        // `logged + masked == attempts` stays exact.
        let snap = l.telemetry().snapshot();
        assert_eq!(snap.per_cpu[0].events_masked, 75);
        l.sampling().clear();
        assert!(h.log1(MajorId::TEST, 0, 0));
        // The slice/logger paths consult the gate too.
        l.sampling().set_rate(MajorId::MEM, 2);
        let kept = (0..10).filter(|_| l.log(0, MajorId::MEM, 0, &[1])).count();
        assert_eq!(kept, 5);
    }

    #[test]
    fn control_events_carry_audit_payloads() {
        let l = logger(1);
        assert!(l.log_control_event(0, control::ANOMALY, &[0, 0, 3500, 42]));
        assert!(!l.log_control_event(9, control::ANOMALY, &[]), "bad cpu");
        assert_eq!(l.stats().events_logged, 0, "audit traffic is uncounted");
        l.flush_all();
        let ev: Vec<RawEvent> = l
            .drain_cpu(0)
            .iter()
            .flat_map(|b| parse_buffer(0, b.seq, &b.words, None).events)
            .filter(|e| e.major == MajorId::CONTROL && e.minor == control::ANOMALY)
            .collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].payload, vec![0, 0, 3500, 42]);
    }

    #[test]
    fn heartbeat_rides_the_trace_uncounted() {
        let l = logger(1);
        let h = l.handle(0).unwrap();
        for i in 0..5 {
            h.log1(MajorId::TEST, 0, i);
        }
        assert!(l.log_heartbeat(0));
        // Heartbeats are control traffic: not a data event.
        assert_eq!(l.stats().events_logged, 5);
        assert_eq!(l.telemetry().snapshot().sink.heartbeats_emitted, 1);
        l.flush_all();
        let hb: Vec<RawEvent> = l
            .drain_cpu(0)
            .iter()
            .flat_map(|b| parse_buffer(0, b.seq, &b.words, None).events)
            .filter(|e| e.major == MajorId::CONTROL && e.minor == control::HEARTBEAT)
            .collect();
        assert_eq!(hb.len(), 1);
        assert_eq!(hb[0].payload.len(), control::HEARTBEAT_WORDS);
        assert_eq!(hb[0].payload[0], 0, "cpu slot");
        assert_eq!(hb[0].payload[1], 5, "events_logged slot");
    }

    #[test]
    fn stats_track_consumption() {
        let l = logger(1);
        let h = l.handle(0).unwrap();
        for i in 0..100 {
            h.log1(MajorId::TEST, 0, i);
        }
        l.flush_all();
        let before = l.stats();
        assert_eq!(before.events_logged, 100);
        assert!(before.words_reserved >= 200);
        let n = l.drain_cpu(0).len() as u64;
        assert_eq!(l.stats().buffers_consumed, n);
    }
}
