//! The K42 lockless tracing core (SC 2003).
//!
//! This crate implements the paper's central contribution: **logging
//! variable-length events into per-processor buffers without locks**, using a
//! compare-and-swap reservation whose timestamp is re-read on every retry so
//! that buffer order equals timestamp order, with filler events keeping the
//! stream randomly accessible at buffer-sized alignment boundaries, and
//! per-buffer commit counts detecting garbled (interrupted) logging.
//!
//! # Quick start
//!
//! ```
//! use ktrace_core::{TraceConfig, TraceLogger};
//! use ktrace_format::MajorId;
//! use ktrace_clock::SyncClock;
//! use std::sync::Arc;
//!
//! let logger = TraceLogger::builder().geometry(TraceConfig::small()).clock(Arc::new(SyncClock::new())).ncpus(2).build().unwrap();
//! let h = logger.handle(0).unwrap(); // bind this thread to "CPU 0"'s buffer
//! h.log2(MajorId::TEST, 7, 0xdead, 0xbeef);
//! logger.flush_cpu(0);
//! let buf = logger.take_buffer(0).unwrap();
//! let parsed = ktrace_core::reader::parse_buffer(0, buf.seq, &buf.words, None);
//! assert!(parsed.events.iter().any(|e| e.major == MajorId::TEST && e.minor == 7));
//! ```
//!
//! # Structure
//!
//! * [`config`] — buffer geometry and operating mode.
//! * [`region`] — one CPU's buffer region: the reservation CAS loop (the
//!   paper's Figure 2), the boundary slow path, commit counts, the consumer
//!   protocol, and flight-recorder snapshots.
//! * [`logger`] — the user-facing [`TraceLogger`] / [`CpuHandle`] API with the
//!   mask-gated fast paths.
//! * [`sample`] — the per-major sampling gate (counter decimation) the
//!   adaptive control plane drives when shedding detail.
//! * [`reader`] — turning raw buffer words back into events, with garble
//!   detection and 64-bit timestamp reconstruction.
//!
//! # Compiling tracing out
//!
//! Building with the `trace-off` feature turns every `log*` call into an
//! inlined no-op (paper goal 6: "allow for zero impact by providing the
//! ability to compile out events if desired").

pub mod builder;
pub mod config;
pub mod error;
pub mod logger;
pub mod reader;
pub mod region;
pub mod sample;

pub use builder::LoggerBuilder;
pub use config::{Mode, TraceConfig, ANCHOR_WORDS, DROPPED_WORDS};
pub use error::CoreError;
pub use logger::{CpuHandle, FlightDump, LoggerStats, RestrictedHandle, TraceLogger};
pub use reader::{parse_buffer, GarbleNote, ParsedBuffer, RawEvent};
pub use region::{CompletedBuffer, RegionSnapshot};
pub use sample::SampleGate;
