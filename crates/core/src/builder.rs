//! Fluent construction for [`TraceLogger`].
//!
//! The (since removed) positional `TraceLogger::new(config, clock, ncpus)`
//! constructor grew call sites where the argument roles are invisible
//! (`new(cfg, clk, 4)` — which 4?). [`LoggerBuilder`] names every step and
//! supplies defaults, so the common cases shrink and the unusual ones
//! become readable:
//!
//! ```
//! use ktrace_core::{TraceConfig, TraceLogger};
//! use ktrace_clock::ManualClock;
//! use ktrace_format::MajorId;
//! use std::sync::Arc;
//!
//! let logger = TraceLogger::builder()
//!     .geometry(TraceConfig::small())
//!     .clock(Arc::new(ManualClock::new(1, 1)))
//!     .ncpus(2)
//!     .enable_only(&[MajorId::TEST, MajorId::LOCK])
//!     .build()
//!     .unwrap();
//! assert_eq!(logger.ncpus(), 2);
//! assert!(!logger.mask().is_enabled(MajorId::SCHED));
//! ```

use crate::config::TraceConfig;
use crate::error::CoreError;
use crate::logger::TraceLogger;
use ktrace_clock::{ClockSource, SyncClock};
use ktrace_format::MajorId;
use std::sync::Arc;

/// How the builder initializes the logger's [`TraceMask`](ktrace_format::TraceMask).
enum MaskInit {
    /// Every major enabled (the default).
    All,
    /// Only the listed majors enabled.
    Only(Vec<MajorId>),
    /// Every major except the listed ones enabled.
    AllBut(Vec<MajorId>),
}

/// Builder for [`TraceLogger`]; obtained from [`TraceLogger::builder`].
///
/// Defaults: [`TraceConfig::default`] geometry, a [`SyncClock`], one CPU,
/// every major enabled.
pub struct LoggerBuilder {
    config: TraceConfig,
    clock: Option<Arc<dyn ClockSource>>,
    ncpus: usize,
    mask: MaskInit,
}

impl Default for LoggerBuilder {
    fn default() -> LoggerBuilder {
        LoggerBuilder {
            config: TraceConfig::default(),
            clock: None,
            ncpus: 1,
            mask: MaskInit::All,
        }
    }
}

impl LoggerBuilder {
    /// Buffer geometry and mode (ring size, buffers per CPU, stream vs
    /// flight recorder).
    pub fn geometry(mut self, config: TraceConfig) -> LoggerBuilder {
        self.config = config;
        self
    }

    /// The clock every CPU region timestamps with. Defaults to a
    /// [`SyncClock`].
    pub fn clock(mut self, clock: Arc<dyn ClockSource>) -> LoggerBuilder {
        self.clock = Some(clock);
        self
    }

    /// Number of per-CPU regions. Defaults to 1.
    pub fn ncpus(mut self, ncpus: usize) -> LoggerBuilder {
        self.ncpus = ncpus;
        self
    }

    /// Start with only these majors enabled in the trace mask.
    pub fn enable_only(mut self, majors: &[MajorId]) -> LoggerBuilder {
        self.mask = MaskInit::Only(majors.to_vec());
        self
    }

    /// Start with these majors disabled (everything else enabled).
    pub fn disable(mut self, majors: &[MajorId]) -> LoggerBuilder {
        self.mask = MaskInit::AllBut(majors.to_vec());
        self
    }

    /// Builds the logger.
    pub fn build(self) -> Result<TraceLogger, CoreError> {
        let clock = self.clock.unwrap_or_else(|| Arc::new(SyncClock::new()));
        let logger = TraceLogger::construct(self.config, clock, self.ncpus)?;
        match self.mask {
            MaskInit::All => {}
            MaskInit::Only(majors) => {
                logger.mask().set(0);
                for m in majors {
                    logger.mask().enable(m);
                }
            }
            MaskInit::AllBut(majors) => {
                for m in majors {
                    logger.mask().disable(m);
                }
            }
        }
        Ok(logger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_one_cpu_logger() {
        let logger = TraceLogger::builder().build().unwrap();
        assert_eq!(logger.ncpus(), 1);
        assert!(logger.mask().is_enabled(MajorId::TEST));
    }

    #[test]
    fn disable_keeps_the_rest_enabled() {
        let logger = TraceLogger::builder()
            .geometry(TraceConfig::small())
            .disable(&[MajorId::MEM])
            .build()
            .unwrap();
        assert!(!logger.mask().is_enabled(MajorId::MEM));
        assert!(logger.mask().is_enabled(MajorId::LOCK));
    }

    #[test]
    fn invalid_geometry_still_errors() {
        let bad = TraceConfig {
            buffer_words: 7,
            ..TraceConfig::small()
        };
        assert!(TraceLogger::builder().geometry(bad).build().is_err());
    }
}
