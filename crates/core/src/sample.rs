//! Per-major sampling gate: counter decimation on the hot path.
//!
//! The trace mask is all-or-nothing per major class; the adaptive control
//! plane (`ktrace-adapt`) needs something between "full detail" and "off"
//! when the tracer is overrunning its consumer. [`SampleGate`] keeps one
//! sampling rate per major: rate 1 admits every event, rate `n` admits one
//! event in `n` (decided by a relaxed per-major tick counter, so the choice
//! is global across CPUs, not per-thread).
//!
//! Cost model: the common case is rate 1, where [`SampleGate::admit`] is a
//! single relaxed load and a compare — measured under 1% of the event cost
//! by the E23 gate (`ktrace-bench fig_adapt_gate`). Only while the
//! controller is actively shedding (rate > 1) does the path pay a relaxed
//! `fetch_add`; that contention is accepted precisely because the system is
//! overloaded and dropping events anyway.
//!
//! `CONTROL` traffic is never sampled: the stream is undecodable without
//! its anchors and fillers, so [`SampleGate::set_rate`] pins major 0 at
//! rate 1, mirroring [`TraceMask`](ktrace_format::TraceMask)'s undisablable
//! CONTROL bit.

use ktrace_format::ids::NUM_MAJOR_IDS;
use ktrace_format::MajorId;
use std::sync::atomic::{AtomicU64, Ordering};

/// The per-major sampling rates consulted by every `log*` fast path.
///
/// Rates are observed "eventually" by loggers, exactly like trace-mask
/// updates: a rate change needs no ordering, only eventual visibility.
pub struct SampleGate {
    /// Sampling rate per major: 1 = keep everything, `n` = keep 1-in-`n`.
    /// Written only by the (single) controller, read by every logger.
    // ktrace-protocol: statistic-counter(rates)
    rates: [AtomicU64; NUM_MAJOR_IDS],
    /// Decimation tick per major, advanced only while its rate exceeds 1.
    // ktrace-protocol: exact-counter(ticks)
    ticks: [AtomicU64; NUM_MAJOR_IDS],
}

impl SampleGate {
    /// A gate admitting everything (every rate 1).
    pub fn new() -> SampleGate {
        SampleGate {
            rates: std::array::from_fn(|_| AtomicU64::new(1)),
            ticks: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Decides whether the next event of `major` is kept. Rate 1 (the
    /// default) is one relaxed load and a compare; higher rates pay one
    /// relaxed `fetch_add` and keep every `rate`-th event.
    #[inline]
    pub fn admit(&self, major: MajorId) -> bool {
        let slot = major.raw() as usize;
        let rate = self.rates[slot].load(Ordering::Relaxed);
        if rate <= 1 {
            return true;
        }
        self.ticks[slot]
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(rate)
    }

    /// Sets `major`'s sampling rate, returning the previous one. Rates are
    /// clamped to at least 1, and `CONTROL` is pinned at 1 — control
    /// traffic keeps the stream decodable and is never decimated.
    pub fn set_rate(&self, major: MajorId, rate: u64) -> u64 {
        let rate = if major == MajorId::CONTROL {
            1
        } else {
            rate.max(1)
        };
        let slot = &self.rates[major.raw() as usize];
        let old = slot.load(Ordering::Relaxed);
        slot.store(rate, Ordering::Relaxed);
        old
    }

    /// The current sampling rate for `major`.
    pub fn rate(&self, major: MajorId) -> u64 {
        self.rates[major.raw() as usize].load(Ordering::Relaxed)
    }

    /// True if any major is currently decimated (rate above 1).
    pub fn any_active(&self) -> bool {
        MajorId::all().any(|m| self.rate(m) > 1)
    }

    /// Resets every rate back to 1 (full detail).
    pub fn clear(&self) {
        for m in MajorId::all() {
            self.set_rate(m, 1);
        }
    }
}

impl Default for SampleGate {
    fn default() -> SampleGate {
        SampleGate::new()
    }
}

impl std::fmt::Debug for SampleGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let active: Vec<(u8, u64)> = MajorId::all()
            .filter_map(|m| {
                let r = self.rate(m);
                (r > 1).then_some((m.raw(), r))
            })
            .collect();
        f.debug_struct("SampleGate")
            .field("active", &active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rate_admits_everything() {
        let g = SampleGate::new();
        assert!((0..1000).all(|_| g.admit(MajorId::MEM)));
        assert!(!g.any_active());
    }

    #[test]
    fn decimation_keeps_one_in_n() {
        let g = SampleGate::new();
        assert_eq!(g.set_rate(MajorId::MEM, 4), 1);
        let kept = (0..1000).filter(|_| g.admit(MajorId::MEM)).count();
        assert_eq!(kept, 250);
        assert!(g.any_active());
        // Other majors are untouched.
        assert!((0..100).all(|_| g.admit(MajorId::SCHED)));
    }

    #[test]
    fn control_is_pinned_and_rates_clamp() {
        let g = SampleGate::new();
        assert_eq!(g.set_rate(MajorId::CONTROL, 64), 1);
        assert_eq!(g.rate(MajorId::CONTROL), 1);
        g.set_rate(MajorId::MEM, 0);
        assert_eq!(g.rate(MajorId::MEM), 1, "rate 0 clamps to 1");
    }

    #[test]
    fn clear_restores_full_detail() {
        let g = SampleGate::new();
        g.set_rate(MajorId::MEM, 8);
        g.set_rate(MajorId::LOCK, 2);
        g.clear();
        assert!(!g.any_active());
        assert_eq!(g.rate(MajorId::MEM), 1);
    }
}
