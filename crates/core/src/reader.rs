//! Decoding raw buffer words back into events.
//!
//! Because events never cross buffer boundaries, a reader can start at any
//! alignment point of a large trace and interpret forward (§3.2's "random
//! access" property). [`parse_buffer`] walks one buffer: it reconstructs full
//! 64-bit timestamps from the buffer's time anchor, validates the event
//! chain, and reports every anomaly (zero headers, overruns, missing anchors,
//! timestamp regressions) as [`GarbleNote`]s instead of failing — "with high
//! probability … errors can be detected by the post-processing tools" (§3.1).

use ktrace_clock::WrapExtender;
use ktrace_format::{EventHeader, MajorId, MinorId};

/// One decoded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// CPU whose region the event came from.
    pub cpu: usize,
    /// Buffer sequence number within that region.
    pub seq: u64,
    /// Word offset of the header within the buffer.
    pub offset: usize,
    /// Reconstructed full 64-bit timestamp (clock ticks).
    pub time: u64,
    /// The raw 32-bit stamp from the header.
    pub ts32: u32,
    /// Major ID.
    pub major: MajorId,
    /// Minor ID.
    pub minor: MinorId,
    /// Payload words.
    pub payload: Vec<u64>,
}

impl RawEvent {
    /// True for stream-control filler events.
    pub fn is_filler(&self) -> bool {
        self.major == MajorId::CONTROL && self.minor == ktrace_format::ids::control::FILLER
    }

    /// True for any tracing-infrastructure control event.
    pub fn is_control(&self) -> bool {
        self.major == MajorId::CONTROL
    }

    /// Total size in words (header + payload).
    pub fn len_words(&self) -> usize {
        1 + self.payload.len()
    }
}

/// An anomaly detected while decoding a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GarbleNote {
    /// A zero header word: a reservation that was never filled in (killed or
    /// long-blocked logger, §3.1). Decoding cannot continue past it.
    ZeroHeader {
        /// Word offset of the bad header.
        offset: usize,
    },
    /// An event length that runs past the buffer end (random data where a
    /// header was expected).
    Overrun {
        /// Word offset of the bad header.
        offset: usize,
        /// Claimed total length in words.
        len_words: usize,
    },
    /// The buffer does not begin with a time anchor; timestamps in it can
    /// only be approximated.
    MissingAnchor,
    /// A timestamp stepped backwards within the buffer, which the reservation
    /// algorithm makes impossible for honestly logged events.
    NonMonotonic {
        /// Word offset of the offending event.
        offset: usize,
    },
}

/// The result of decoding one buffer.
#[derive(Debug, Clone)]
pub struct ParsedBuffer {
    /// Every decoded event, control events included, in buffer order.
    pub events: Vec<RawEvent>,
    /// Anomalies found.
    pub notes: Vec<GarbleNote>,
    /// Words consumed by filler events (space overhead accounting, E6).
    pub filler_words: usize,
    /// The last reconstructed timestamp, to hint the next buffer if its
    /// anchor is damaged.
    pub end_time: Option<u64>,
}

impl ParsedBuffer {
    /// Events excluding tracing-infrastructure control events.
    pub fn data_events(&self) -> impl Iterator<Item = &RawEvent> {
        self.events.iter().filter(|e| !e.is_control())
    }

    /// True if the buffer decoded without anomalies.
    pub fn clean(&self) -> bool {
        self.notes.is_empty()
    }
}

/// Decodes the words of buffer `seq` from `cpu`'s region.
///
/// `time_hint` supplies an approximate full timestamp (e.g. the previous
/// buffer's `end_time`) used when the buffer's own anchor is missing or
/// damaged.
pub fn parse_buffer(cpu: usize, seq: u64, words: &[u64], time_hint: Option<u64>) -> ParsedBuffer {
    let mut events = Vec::new();
    let mut notes = Vec::new();
    let mut filler_words = 0usize;
    let mut extender: Option<WrapExtender> = None;
    let mut off = 0usize;

    while off < words.len() {
        let header = match EventHeader::decode(words[off]) {
            Ok(h) => h,
            Err(_) => {
                notes.push(GarbleNote::ZeroHeader { offset: off });
                break;
            }
        };
        let len = header.len_words as usize;
        if off + len > words.len() {
            notes.push(GarbleNote::Overrun {
                offset: off,
                len_words: len,
            });
            break;
        }
        let payload = words[off + 1..off + len].to_vec();

        // A time anchor re-seeds the extender with the full 64-bit time.
        if header.is_time_anchor() && !payload.is_empty() {
            let full = payload[0];
            match &mut extender {
                Some(e) => {
                    if full < e.last() {
                        notes.push(GarbleNote::NonMonotonic { offset: off });
                    }
                    e.reseed(full);
                }
                None => extender = Some(WrapExtender::new(full)),
            }
        } else if off == 0 {
            notes.push(GarbleNote::MissingAnchor);
        }

        let time = match &mut extender {
            Some(e) => {
                let prev = e.last();
                let t = e.extend(header.timestamp);
                if t < prev {
                    notes.push(GarbleNote::NonMonotonic { offset: off });
                }
                t
            }
            None => match time_hint {
                Some(hint) => {
                    let mut e = WrapExtender::new(hint);
                    let t = e.extend(header.timestamp);
                    extender = Some(e);
                    t
                }
                None => header.timestamp as u64,
            },
        };

        if header.is_filler() {
            filler_words += len;
        }
        events.push(RawEvent {
            cpu,
            seq,
            offset: off,
            time,
            ts32: header.timestamp,
            major: header.major,
            minor: header.minor,
            payload,
        });
        off += len;
    }

    let end_time = events.last().map(|e| e.time);
    ParsedBuffer {
        events,
        notes,
        filler_words,
        end_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_format::ids::control;

    fn anchor(full_ts: u64, cpu: u64) -> Vec<u64> {
        let h =
            EventHeader::new(full_ts as u32, 2, MajorId::CONTROL, control::TIME_ANCHOR).unwrap();
        vec![h.encode(), full_ts, cpu]
    }

    fn event(ts32: u32, major: MajorId, minor: u16, payload: &[u64]) -> Vec<u64> {
        let h = EventHeader::new(ts32, payload.len(), major, minor).unwrap();
        let mut v = vec![h.encode()];
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn parses_anchored_buffer() {
        let mut words = anchor(0x5_0000_0100, 2);
        words.extend(event(0x0000_0150, MajorId::TEST, 1, &[10, 20]));
        words.extend(event(0x0000_0200, MajorId::MEM, 2, &[]));
        let p = parse_buffer(2, 0, &words, None);
        assert!(p.clean(), "{:?}", p.notes);
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.events[1].time, 0x5_0000_0150);
        assert_eq!(p.events[1].payload, vec![10, 20]);
        assert_eq!(p.events[2].time, 0x5_0000_0200);
        assert_eq!(p.end_time, Some(0x5_0000_0200));
        assert_eq!(p.data_events().count(), 2);
    }

    #[test]
    fn timestamp_wrap_within_buffer() {
        let mut words = anchor(0x5_ffff_fff0, 0);
        words.extend(event(0xffff_fffa, MajorId::TEST, 1, &[]));
        words.extend(event(0x0000_0004, MajorId::TEST, 2, &[]));
        let p = parse_buffer(0, 0, &words, None);
        assert!(p.clean());
        assert_eq!(p.events[1].time, 0x5_ffff_fffa);
        assert_eq!(p.events[2].time, 0x6_0000_0004);
    }

    #[test]
    fn zero_header_stops_decode_with_note() {
        let mut words = anchor(1000, 0);
        words.extend(event(1001, MajorId::TEST, 1, &[7]));
        words.push(0); // unwritten reservation
        words.extend(event(1002, MajorId::TEST, 2, &[8])); // unreachable
        let p = parse_buffer(0, 0, &words, None);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.notes, vec![GarbleNote::ZeroHeader { offset: 5 }]);
    }

    #[test]
    fn overrun_detected() {
        let mut words = anchor(1000, 0);
        // Header claiming 500 words in a tiny buffer.
        let h = EventHeader::new(1001, 499, MajorId::TEST, 1).unwrap();
        words.push(h.encode());
        let p = parse_buffer(0, 0, &words, None);
        assert_eq!(p.events.len(), 1);
        assert!(matches!(
            p.notes[0],
            GarbleNote::Overrun {
                offset: 3,
                len_words: 500
            }
        ));
    }

    #[test]
    fn missing_anchor_uses_hint() {
        let words = event(0x0000_0042, MajorId::TEST, 1, &[]);
        let p = parse_buffer(0, 3, &words, Some(0x9_0000_0000));
        assert!(p.notes.contains(&GarbleNote::MissingAnchor));
        assert_eq!(p.events[0].time, 0x9_0000_0042);
        // Without a hint the 32-bit stamp is used as-is.
        let p2 = parse_buffer(0, 3, &words, None);
        assert_eq!(p2.events[0].time, 0x42);
    }

    #[test]
    fn nonmonotonic_flagged() {
        let mut words = anchor(0x1000, 0);
        words.extend(event(0x2000, MajorId::TEST, 1, &[]));
        // A stamp "before" the previous one: the extender wraps it forward a
        // full 2^32 and flags nothing... so craft a genuine regression by
        // reseeding via a second (corrupt) anchor going backwards.
        let mut bad_anchor = anchor(0x500, 0);
        // Give the corrupt anchor a plausible 32-bit stamp.
        words.append(&mut bad_anchor);
        words.extend(event(0x600, MajorId::TEST, 2, &[]));
        let p = parse_buffer(0, 0, &words, None);
        assert!(
            p.notes
                .iter()
                .any(|n| matches!(n, GarbleNote::NonMonotonic { .. })),
            "{:?}",
            p.notes
        );
    }

    #[test]
    fn filler_words_counted_and_filtered() {
        let mut words = anchor(10, 0);
        words.extend(event(11, MajorId::TEST, 1, &[1]));
        let f = EventHeader::filler(12, 5).unwrap();
        words.push(f.encode());
        words.extend([0u64; 4]); // filler body (uninitialized is fine)
        let p = parse_buffer(0, 0, &words, None);
        assert!(p.clean());
        assert_eq!(p.filler_words, 5);
        assert_eq!(p.data_events().count(), 1);
        assert!(p.events.iter().any(|e| e.is_filler()));
    }

    #[test]
    fn empty_buffer_parses_empty() {
        let p = parse_buffer(0, 0, &[], None);
        assert!(p.events.is_empty());
        assert!(p.clean());
        assert_eq!(p.end_time, None);
    }
}
