//! Error type for the tracing core.

use std::fmt;

/// Errors from logger construction and logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// Invalid [`TraceConfig`](crate::TraceConfig).
    BadConfig(&'static str),
    /// Event payload exceeds [`TraceConfig::max_payload_words`](crate::TraceConfig::max_payload_words).
    EventTooLarge {
        /// Requested payload words.
        payload_words: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// CPU index out of range for this logger.
    BadCpu {
        /// Requested CPU.
        cpu: usize,
        /// Number of CPUs the logger was built with.
        ncpus: usize,
    },
    /// Stream mode only: the consumer is too far behind and the event was
    /// dropped (recorded in the dropped counter and a later marker event).
    Overrun,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadConfig(why) => write!(f, "bad trace config: {why}"),
            CoreError::EventTooLarge { payload_words, max } => {
                write!(f, "event payload {payload_words} words exceeds max {max}")
            }
            CoreError::BadCpu { cpu, ncpus } => write!(f, "cpu {cpu} out of range ({ncpus} cpus)"),
            CoreError::Overrun => write!(f, "event dropped: consumer overrun"),
        }
    }
}

impl std::error::Error for CoreError {}
