//! One CPU's trace region: the lockless reservation algorithm (paper Fig. 2).
//!
//! A region is `buffers_per_cpu` buffers of `buffer_words` 64-bit words. A
//! single *unwrapped* atomic word index advances monotonically; the physical
//! position is `index mod region_words`. To log an event a thread:
//!
//! 1. reads the index, **reads the timestamp** (re-read on every retry so a
//!    later buffer position can never carry an earlier timestamp — the
//!    paper's monotonicity requirement),
//! 2. attempts `CAS(index, old → old + len)`; the winner owns the extent,
//! 3. writes payload words, then the header word (`Release`), then adds the
//!    event length to the buffer's commit count (`Release`).
//!
//! If the reservation would cross a buffer boundary, the thread instead
//! attempts one CAS that claims *the remainder of the current buffer plus a
//! time anchor (and possibly a dropped-count marker) at the start of the next
//! buffer plus its own event*: `CAS(index, old → next_boundary + anchor +
//! marker + len)`. The winner writes filler header(s) over the remainder, the
//! anchor, the marker, and its event. Losers retry. Thus fillers and anchors
//! need no lock either, and every buffer starts with a full 64-bit time
//! anchor.
//!
//! **Commit counts** are cumulative per buffer *slot* and never reset by
//! producers (resetting would race with concurrent committers): slot `s`
//! hosts buffer sequences `s, s+n, s+2n, …`, so sequence `q` is complete
//! exactly when `committed[s] == buffer_words · (q/n + 1)`. A killed or
//! long-blocked logger leaves the count short ("not enough data"), and one
//! that wakes after its buffer was recycled pushes it over ("too much") —
//! precisely the two anomalies §3.1 describes detecting with per-buffer
//! counts.
//!
//! Payload-before-header write order (the reverse of the paper's pseudo-code)
//! costs nothing and means a non-zero header word implies its payload words
//! were written by the same logger; buffers are zeroed when consumed, so an
//! all-zero header marks an unfinished event. Word-level tearing is
//! impossible (all words are `AtomicU64`); event-level garbling remains
//! possible and is what the commit counts and reader checks catch.

use crate::config::{Mode, TraceConfig, ANCHOR_WORDS, DROPPED_WORDS};
use crate::error::CoreError;
use ktrace_clock::ClockSource;
use ktrace_format::header::filler_chain;
use ktrace_format::ids::control;
use ktrace_format::{EventHeader, MajorId, MinorId};
use ktrace_telemetry::{CpuCounters, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A drained, completed buffer handed to the consumer.
#[derive(Debug, Clone)]
pub struct CompletedBuffer {
    /// Which CPU's region the buffer came from.
    pub cpu: usize,
    /// Monotonic buffer sequence number within that region.
    pub seq: u64,
    /// The buffer's words, copied out.
    pub words: Vec<u64>,
    /// True if the commit count matched exactly — no garbling (§3.1).
    pub complete: bool,
    /// The cumulative commit count observed for the slot.
    pub committed_words: u64,
    /// The cumulative count a fully committed slot would show.
    pub expected_words: u64,
}

/// A point-in-time copy of a whole region, for flight-recorder dumps.
#[derive(Debug, Clone)]
pub struct RegionSnapshot {
    /// Which CPU's region this is.
    pub cpu: usize,
    /// The unwrapped word index at snapshot time.
    pub index: u64,
    /// Words per buffer.
    pub buffer_words: usize,
    /// Buffers per region.
    pub buffers_per_cpu: usize,
    /// All region words.
    pub words: Vec<u64>,
}

impl RegionSnapshot {
    /// The sequence number of the buffer being filled at snapshot time.
    pub fn current_seq(&self) -> u64 {
        self.index / self.buffer_words as u64
    }

    /// The oldest buffer sequence still (partially) present in the region.
    pub fn oldest_seq(&self) -> u64 {
        let cur = self.current_seq();
        cur.saturating_sub(self.buffers_per_cpu as u64 - 1)
    }

    /// The words of buffer `seq`, truncated to the written prefix for the
    /// buffer currently being filled. `None` if `seq` is outside the window.
    pub fn buffer(&self, seq: u64) -> Option<&[u64]> {
        if seq < self.oldest_seq() || seq > self.current_seq() {
            return None;
        }
        let slot = (seq % self.buffers_per_cpu as u64) as usize;
        let base = slot * self.buffer_words;
        let end = if seq == self.current_seq() {
            base + (self.index % self.buffer_words as u64) as usize
        } else {
            base + self.buffer_words
        };
        Some(&self.words[base..end])
    }
}

/// One CPU's buffer region and its control structure.
///
/// In K42 these live in processor-local memory mapped into every address
/// space; here the region is plain shared memory reached through an `Arc`,
/// which preserves the measured property (no syscall, no lock, one CAS on a
/// CPU-local cache line per event).
pub struct CpuRegion {
    cpu: usize,
    config: TraceConfig,
    clock: Arc<dyn ClockSource>,
    /// The buffer memory; `AtomicU64` so concurrent flight-recorder reads of
    /// live buffers are defined behaviour (possibly stale, never torn words).
    /// Payload words go down relaxed; header words carry the release that
    /// publishes the payload (`w` is the per-word iteration alias).
    // ktrace-protocol: message-word(words, w)
    words: Box<[AtomicU64]>,
    /// Unwrapped reservation index (Fig. 2's `trcCtlPtr->index`). Advanced
    /// only by the winning CAS; reads may be relaxed (the CAS re-validates).
    // ktrace-protocol: reservation-tail(index)
    index: AtomicU64,
    /// Cumulative committed words per buffer slot. The committer's
    /// `fetch_add(Release)` pairs with the consumer's `load(Acquire)`.
    // ktrace-protocol: commit-word(committed)
    committed: Box<[AtomicU64]>,
    /// Buffers released by the consumer (stream mode). The consumer's
    /// `store(Release)` after zeroing a slot pairs with the producers'
    /// `load(Acquire)` before writing into a recycled slot.
    // ktrace-protocol: acquire-release(consumed)
    consumed: AtomicU64,
    /// Events dropped because the consumer fell behind, *pending* an
    /// in-stream DROPPED marker (cumulative drops live in the telemetry
    /// block).
    // ktrace-protocol: exact-counter(dropped)
    dropped: AtomicU64,
    /// The shared self-observability registry this region tallies into.
    tel: Arc<Telemetry>,
    /// This region's slot in `tel` (the logger maps it to the CPU index; a
    /// standalone region owns a single-slot registry).
    tslot: usize,
    /// Serializes consumers; producers never touch this lock.
    take_lock: Mutex<()>,
}

impl CpuRegion {
    /// Creates an empty region for `cpu`, with its own private telemetry
    /// registry. Loggers share one registry across regions via
    /// [`CpuRegion::with_telemetry`].
    pub fn new(config: TraceConfig, clock: Arc<dyn ClockSource>, cpu: usize) -> CpuRegion {
        CpuRegion::with_telemetry(config, clock, cpu, Arc::new(Telemetry::new(1)), 0)
    }

    /// Creates an empty region for `cpu` tallying into slot `tslot` of the
    /// shared telemetry registry `tel`.
    pub fn with_telemetry(
        config: TraceConfig,
        clock: Arc<dyn ClockSource>,
        cpu: usize,
        tel: Arc<Telemetry>,
        tslot: usize,
    ) -> CpuRegion {
        let total = config.region_words();
        CpuRegion {
            cpu,
            config,
            clock,
            words: (0..total).map(|_| AtomicU64::new(0)).collect(),
            index: AtomicU64::new(0),
            committed: (0..config.buffers_per_cpu)
                .map(|_| AtomicU64::new(0))
                .collect(),
            consumed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            tel,
            tslot,
            take_lock: Mutex::new(()),
        }
    }

    /// This region's counter block in the shared telemetry registry.
    #[inline]
    fn tally(&self) -> &CpuCounters {
        self.tel.cpu(self.tslot)
    }

    /// The region's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Logs one event. This is `traceLog` from Fig. 2: reserve, write data,
    /// write header, commit.
    pub fn log_raw(
        &self,
        major: MajorId,
        minor: MinorId,
        payload: &[u64],
    ) -> Result<(), CoreError> {
        let total = payload.len() + 1;
        if total > self.config.max_event_words() {
            return Err(CoreError::EventTooLarge {
                payload_words: payload.len(),
                max: self.config.max_payload_words(),
            });
        }
        let (start, ts) = self.reserve(total).ok_or(CoreError::Overrun)?;
        let header = EventHeader::new(ts as u32, payload.len(), major, minor)
            .expect("payload bounded by max_event_words");
        self.write_event(start, header, payload);
        self.tally().tally_event();
        Ok(())
    }

    /// Logs a `CONTROL` event (heartbeats): same lockless path as
    /// [`log_raw`](CpuRegion::log_raw), but not counted as a data event, so
    /// `events_logged` keeps matching the data events a drained file holds.
    pub fn log_control(&self, minor: MinorId, payload: &[u64]) -> Result<(), CoreError> {
        let total = payload.len() + 1;
        if total > self.config.max_event_words() {
            return Err(CoreError::EventTooLarge {
                payload_words: payload.len(),
                max: self.config.max_payload_words(),
            });
        }
        let (start, ts) = self.reserve(total).ok_or(CoreError::Overrun)?;
        let header = EventHeader::new(ts as u32, payload.len(), MajorId::CONTROL, minor)
            .expect("payload bounded by max_event_words");
        self.write_event(start, header, payload);
        Ok(())
    }

    /// The reservation loop (`traceReserve` + `traceReserveSlow`, Fig. 2).
    /// Returns the claimed start index and the timestamp read under the
    /// winning CAS, or `None` if the event must be dropped (stream overrun).
    fn reserve(&self, total_words: usize) -> Option<(u64, u64)> {
        let bw = self.config.buffer_words as u64;
        let mut first_ts: Option<u64> = None;
        loop {
            let old = self.index.load(Ordering::Relaxed);
            let pos = (old % bw) as usize;
            // Re-determine the timestamp on every attempt: "processes must
            // re-determine the timestamp during each attempt to atomically
            // increment the index" (§3.1).
            let ts = self.clock.now(self.cpu);
            // The wait tally reuses these per-attempt reads: winning ts minus
            // first-attempt ts, no extra clock query.
            let t0 = *first_ts.get_or_insert(ts);
            if pos != 0 && pos + total_words <= bw as usize {
                // Fast path: fits in the current buffer.
                if self
                    .index
                    .compare_exchange_weak(
                        old,
                        old + total_words as u64,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    self.tally().observe_reserve_wait(ts.saturating_sub(t0));
                    return Some((old, ts));
                }
                self.tally().tally_cas_retry();
                continue;
            }

            // Slow path: `pos == 0` means a fresh buffer that still needs its
            // anchor (including the very first event); otherwise the event
            // would cross the alignment boundary.
            let next_seq = if pos == 0 { old / bw } else { old / bw + 1 };

            if self.config.mode == Mode::Stream {
                // `Acquire` pairs with the consumer's `Release` store after it
                // zeroes the slot, so writes into a recycled slot can't race
                // with the zeroing.
                let consumed = self.consumed.load(Ordering::Acquire);
                if next_seq >= consumed + self.config.buffers_per_cpu as u64 {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    self.tally().tally_dropped();
                    return None;
                }
            }

            let drop_pending = self.dropped.load(Ordering::Relaxed) > 0;
            let extra = if drop_pending { DROPPED_WORDS } else { 0 };
            let claimed = ANCHOR_WORDS + extra + total_words;
            let new = next_seq * bw + claimed as u64;
            if self
                .index
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                self.tally().tally_cas_retry();
                continue;
            }
            self.tally().tally_wrap();
            if self.config.mode == Mode::FlightRecorder
                && next_seq >= self.config.buffers_per_cpu as u64
            {
                // Wrapping past capacity overwrites the oldest unread buffer.
                self.tally().tally_overwrite();
            }

            // Won the buffer switch: fill the remainder with filler event(s)…
            if pos != 0 {
                self.write_fillers(old, bw as usize - pos, ts as u32);
            }
            // …anchor the new buffer with the full 64-bit time…
            let base = next_seq * bw;
            let anchor = EventHeader::new(ts as u32, 2, MajorId::CONTROL, control::TIME_ANCHOR)
                .expect("anchor payload fits");
            self.write_event(base, anchor, &[ts, self.cpu as u64]);
            // …and record how many events were dropped while overrun.
            if drop_pending {
                let count = self.dropped.swap(0, Ordering::Relaxed);
                let marker = EventHeader::new(ts as u32, 1, MajorId::CONTROL, control::DROPPED)
                    .expect("marker payload fits");
                self.write_event(base + ANCHOR_WORDS as u64, marker, &[count]);
            }
            self.tally().observe_reserve_wait(ts.saturating_sub(t0));
            return Some((base + (ANCHOR_WORDS + extra) as u64, ts));
        }
    }

    /// Writes a chain of filler headers covering `remainder` words at `at`.
    fn write_fillers(&self, at: u64, remainder: usize, ts32: u32) {
        let mut off = at;
        for seg in filler_chain(remainder) {
            let h = EventHeader::filler(ts32, seg).expect("segment bounded");
            let pos = (off % self.words.len() as u64) as usize;
            self.words[pos].store(h.encode(), Ordering::Release);
            off += seg as u64;
        }
        self.tally().tally_filler_words(remainder as u64);
        self.commit(at, remainder);
    }

    /// Writes payload then header (release) then commits.
    fn write_event(&self, at: u64, header: EventHeader, payload: &[u64]) {
        let region = self.words.len() as u64;
        let pos = (at % region) as usize;
        for (i, &w) in payload.iter().enumerate() {
            self.words[pos + 1 + i].store(w, Ordering::Relaxed);
        }
        self.words[pos].store(header.encode(), Ordering::Release);
        self.commit(at, header.len_words as usize);
    }

    /// `traceCommit`: adds `len` words to the commit count of the buffer
    /// containing index `at`.
    fn commit(&self, at: u64, len: usize) {
        let slot =
            ((at / self.config.buffer_words as u64) % self.config.buffers_per_cpu as u64) as usize;
        self.committed[slot].fetch_add(len as u64, Ordering::Release);
    }

    /// Force-closes the current partially filled buffer with filler so the
    /// consumer can drain it (end-of-run flush). Returns false if the current
    /// buffer is untouched.
    pub fn flush(&self) -> bool {
        let bw = self.config.buffer_words as u64;
        loop {
            let old = self.index.load(Ordering::Relaxed);
            let pos = (old % bw) as usize;
            if pos == 0 {
                return false;
            }
            let ts = self.clock.now(self.cpu);
            let new = (old / bw + 1) * bw;
            if self
                .index
                .compare_exchange(old, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.write_fillers(old, bw as usize - pos, ts as u32);
                return true;
            }
        }
    }

    /// Takes the oldest completed buffer, if the producer has moved past it
    /// (stream mode only). Incomplete (garbled) buffers are still taken, with
    /// `complete == false`, as §3.1 prescribes reporting the anomaly rather
    /// than blocking.
    pub fn take_buffer(&self) -> Option<CompletedBuffer> {
        if self.config.mode != Mode::Stream {
            return None;
        }
        let _guard = self.take_lock.lock();
        let bw = self.config.buffer_words as u64;
        // Acquire pairs with the Release store below: a consumer taking over
        // (e.g. after the take lock changes hands) must see the predecessor's
        // zeroing, not just its count.
        let seq = self.consumed.load(Ordering::Acquire);
        let idx = self.index.load(Ordering::Acquire);
        if idx < (seq + 1) * bw {
            return None;
        }
        let nbuf = self.config.buffers_per_cpu as u64;
        let slot = (seq % nbuf) as usize;
        let expected = bw * (seq / nbuf + 1);
        // A writer commits shortly *after* the CAS that pushed the index past
        // this buffer (its filler/header writes follow the reservation), so a
        // just-closed buffer can look transiently incomplete. Give stragglers
        // a bounded grace period before declaring garble — a logger that was
        // killed (the §3.1 scenario) never commits and is still caught.
        let mut committed = self.committed[slot].load(Ordering::Acquire);
        for _ in 0..1000 {
            if committed >= expected {
                break;
            }
            std::thread::yield_now();
            committed = self.committed[slot].load(Ordering::Acquire);
        }
        let base = slot * bw as usize;
        let words: Vec<u64> = self.words[base..base + bw as usize]
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect();
        // Zero the slot so the next generation starts clean: an unwritten
        // header then reads as zero, which decoders treat as garble.
        for w in &self.words[base..base + bw as usize] {
            w.store(0, Ordering::Relaxed);
        }
        self.consumed.store(seq + 1, Ordering::Release);
        Some(CompletedBuffer {
            cpu: self.cpu,
            seq,
            words,
            complete: committed == expected,
            committed_words: committed,
            expected_words: expected,
        })
    }

    /// Fault injection: reserves `total_words` exactly like a logger would
    /// and then never writes or commits them — the killed-mid-log scenario of
    /// §3.1 ("a process … killed at an inopportune moment leaves a buffer
    /// whose commit count never catches up"). The claimed extent stays zeroed
    /// so decoders see a [`GarbleNote::ZeroHeader`](crate::reader::GarbleNote)
    /// and the buffer drains with `complete == false`. Returns the abandoned
    /// start index, or `None` in stream mode when the region is overrun.
    pub fn abandon_reservation(&self, total_words: usize) -> Option<u64> {
        if total_words == 0 || total_words > self.config.max_event_words() {
            return None;
        }
        self.reserve(total_words).map(|(start, _ts)| start)
    }

    /// Fault injection: XORs `mask` into the region word at unwrapped index
    /// `at` — a torn header or flipped payload word, as left by errant DMA or
    /// a stray store. Atomic, so concurrent readers still see untorn words.
    pub fn corrupt_word(&self, at: u64, mask: u64) {
        let pos = (at % self.words.len() as u64) as usize;
        // ktrace-lint: allow(atomic-order) — fault injection violates the
        // message-word protocol on purpose (an RMW no real logger performs).
        self.words[pos].fetch_xor(mask, Ordering::AcqRel);
    }

    /// Fault injection: skews buffer slot `slot`'s cumulative commit count by
    /// `delta` words (wrapping). A positive skew simulates a logger that woke
    /// after its buffer was recycled ("too much data"); a negative one, a
    /// commit that never landed ("not enough data") — the two §3.1 anomalies.
    pub fn desync_commit(&self, slot: usize, delta: i64) {
        let slot = slot % self.config.buffers_per_cpu;
        if delta >= 0 {
            // ktrace-lint: allow(atomic-order) — fault injection skews the
            // commit word outside the commit-word protocol on purpose.
            self.committed[slot].fetch_add(delta as u64, Ordering::AcqRel);
        } else {
            // ktrace-lint: allow(atomic-order) — as above, negative skew.
            self.committed[slot].fetch_sub(delta.unsigned_abs(), Ordering::AcqRel);
        }
    }

    /// Copies the whole region for flight-recorder inspection (§4.2). Safe to
    /// call while producers are running; the tail may be garbled.
    pub fn snapshot(&self) -> RegionSnapshot {
        RegionSnapshot {
            cpu: self.cpu,
            index: self.index.load(Ordering::Acquire),
            buffer_words: self.config.buffer_words,
            buffers_per_cpu: self.config.buffers_per_cpu,
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Number of events successfully logged.
    pub fn events_logged(&self) -> u64 {
        self.tally().events_logged()
    }

    /// The telemetry registry this region reports into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.tel
    }

    /// Number of events dropped to consumer overrun (not yet marked).
    pub fn dropped_pending(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The current unwrapped word index.
    pub fn index(&self) -> u64 {
        self.index.load(Ordering::Relaxed)
    }

    /// Buffers released by the consumer so far. Acquire, so an observer that
    /// sees `n` buffers consumed also sees those slots zeroed.
    pub fn buffers_consumed(&self) -> u64 {
        self.consumed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for CpuRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuRegion")
            .field("cpu", &self.cpu)
            .field("index", &self.index())
            .field("events", &self.events_logged())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktrace_clock::ManualClock;

    fn region(cfg: TraceConfig) -> (Arc<ManualClock>, CpuRegion) {
        let clock = Arc::new(ManualClock::new(1000, 1));
        (clock.clone(), CpuRegion::new(cfg, clock, 0))
    }

    #[test]
    fn first_event_opens_buffer_with_anchor() {
        let (_c, r) = region(TraceConfig::small());
        r.log_raw(MajorId::TEST, 1, &[42]).unwrap();
        // Index: anchor (3) + event (2).
        assert_eq!(r.index(), 5);
        let snap = r.snapshot();
        let buf = snap.buffer(0).unwrap();
        let anchor = EventHeader::decode(buf[0]).unwrap();
        assert!(anchor.is_time_anchor());
        assert_eq!(buf[2], 0); // cpu id payload
        let ev = EventHeader::decode(buf[3]).unwrap();
        assert_eq!(ev.major, MajorId::TEST);
        assert_eq!(buf[4], 42);
    }

    #[test]
    fn events_fill_and_cross_boundary_with_filler() {
        let cfg = TraceConfig::small(); // 128-word buffers
        let (_c, r) = region(cfg);
        // Fill buffer 0 close to the end: anchor(3) + k events of 5 words.
        let per = 5usize;
        let fit = (cfg.buffer_words - ANCHOR_WORDS) / per; // events fitting buffer 0
        for i in 0..fit + 1 {
            r.log_raw(MajorId::TEST, i as u16, &[1, 2, 3, 4]).unwrap();
        }
        // The +1'th event went to buffer 1.
        assert_eq!(r.index() / cfg.buffer_words as u64, 1);
        let snap = r.snapshot();
        let b0 = snap.buffer(0).unwrap();
        // Walk buffer 0: anchor, then `fit` events, then filler to the end.
        let mut off = 0;
        let mut seen_filler = false;
        while off < b0.len() {
            let h = EventHeader::decode(b0[off]).unwrap();
            if h.is_filler() {
                seen_filler = true;
            }
            off += h.len_words as usize;
        }
        assert_eq!(
            off, cfg.buffer_words,
            "events chain exactly to the boundary"
        );
        let leftover = cfg.buffer_words - ANCHOR_WORDS - fit * per;
        assert_eq!(seen_filler, leftover > 0);
        // Buffer 1 starts with an anchor.
        let b1 = snap.buffer(1).unwrap();
        assert!(EventHeader::decode(b1[0]).unwrap().is_time_anchor());
    }

    #[test]
    fn exact_fill_needs_no_filler() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        // Two events exactly filling buffer 0 after the anchor
        // (anchor 3 + 63 + 62 = 128 words).
        let rest = cfg.buffer_words - ANCHOR_WORDS; // 125
        let first = rest / 2 + 1; // 63
        r.log_raw(MajorId::TEST, 0, &vec![7u64; first - 1]).unwrap();
        r.log_raw(MajorId::TEST, 0, &vec![8u64; rest - first - 1])
            .unwrap();
        assert_eq!(r.index() % cfg.buffer_words as u64, 0);
        // Next event opens buffer 1 via the pos==0 slow path.
        r.log_raw(MajorId::TEST, 1, &[]).unwrap();
        let snap = r.snapshot();
        let b0 = snap.buffer(0).unwrap();
        let mut off = 0;
        let mut fillers = 0;
        while off < b0.len() {
            let h = EventHeader::decode(b0[off]).unwrap();
            fillers += h.is_filler() as usize;
            off += h.len_words as usize;
        }
        assert_eq!(fillers, 0);
        assert!(EventHeader::decode(snap.buffer(1).unwrap()[0])
            .unwrap()
            .is_time_anchor());
    }

    #[test]
    fn oversized_event_rejected() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        let too_big = vec![0u64; cfg.max_payload_words() + 1];
        assert!(matches!(
            r.log_raw(MajorId::TEST, 0, &too_big),
            Err(CoreError::EventTooLarge { .. })
        ));
        let just_fits = vec![0u64; cfg.max_payload_words()];
        r.log_raw(MajorId::TEST, 0, &just_fits).unwrap();
    }

    #[test]
    fn stream_overrun_drops_and_marks() {
        let cfg = TraceConfig::small(); // 4 buffers
        let (_c, r) = region(cfg);
        // Fill all 4 buffers without consuming.
        let payload = [0u64; 15];
        let mut dropped_seen = false;
        for _ in 0..1000 {
            if r.log_raw(MajorId::TEST, 0, &payload).is_err() {
                dropped_seen = true;
                break;
            }
        }
        assert!(dropped_seen, "region should fill up and drop");
        assert!(r.dropped_pending() > 0);
        let idx_stuck = r.index();
        assert!(r.log_raw(MajorId::TEST, 0, &payload).is_err());
        assert_eq!(r.index(), idx_stuck, "no progress while overrun");

        // Drain one buffer; logging resumes and a DROPPED marker appears.
        let buf = r.take_buffer().unwrap();
        assert!(buf.complete);
        r.log_raw(MajorId::TEST, 9, &payload).unwrap();
        assert_eq!(r.dropped_pending(), 0);
        let snap = r.snapshot();
        let newest = snap.buffer(snap.current_seq()).unwrap();
        let anchor = EventHeader::decode(newest[0]).unwrap();
        assert!(anchor.is_time_anchor());
        let marker = EventHeader::decode(newest[ANCHOR_WORDS]).unwrap();
        assert_eq!(marker.major, MajorId::CONTROL);
        assert_eq!(marker.minor, control::DROPPED);
        assert!(newest[ANCHOR_WORDS + 1] > 0, "dropped count recorded");
    }

    #[test]
    fn take_buffer_order_and_zeroing() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        let payload = [1u64; 10];
        while r.index() < 2 * cfg.buffer_words as u64 {
            r.log_raw(MajorId::TEST, 0, &payload).unwrap();
        }
        let b0 = r.take_buffer().unwrap();
        assert_eq!(b0.seq, 0);
        assert!(b0.complete);
        let b1 = r.take_buffer().unwrap();
        assert_eq!(b1.seq, 1);
        // Buffer 2 is still being filled.
        assert!(r.take_buffer().is_none());
        assert_eq!(r.buffers_consumed(), 2);
    }

    #[test]
    fn flush_closes_partial_buffer() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        r.log_raw(MajorId::TEST, 0, &[1, 2]).unwrap();
        assert!(r.take_buffer().is_none(), "partial buffer not takeable");
        assert!(r.flush());
        assert!(!r.flush(), "second flush is a no-op");
        let buf = r.take_buffer().unwrap();
        assert!(buf.complete, "filler commit completes the buffer");
        // Contents: anchor, event, filler(s).
        let h0 = EventHeader::decode(buf.words[0]).unwrap();
        assert!(h0.is_time_anchor());
        let h1 = EventHeader::decode(buf.words[ANCHOR_WORDS]).unwrap();
        assert_eq!(h1.major, MajorId::TEST);
        let h2 = EventHeader::decode(buf.words[ANCHOR_WORDS + 3]).unwrap();
        assert!(h2.is_filler());
    }

    #[test]
    fn flight_recorder_wraps_without_dropping() {
        let cfg = TraceConfig::small().flight_recorder();
        let (_c, r) = region(cfg);
        let payload = [3u64; 10];
        // Log far more than the region holds.
        for i in 0..5000u64 {
            r.log_raw(MajorId::TEST, (i % 100) as u16, &payload)
                .unwrap();
        }
        assert_eq!(r.dropped_pending(), 0);
        assert!(
            r.index() > cfg.region_words() as u64,
            "wrapped at least once"
        );
        assert!(
            r.take_buffer().is_none(),
            "no consumer in flight-recorder mode"
        );
        let snap = r.snapshot();
        // Oldest visible buffer is within one region of the index.
        assert_eq!(
            snap.oldest_seq(),
            snap.current_seq() - (cfg.buffers_per_cpu as u64 - 1)
        );
        assert!(snap.buffer(snap.oldest_seq() - 1).is_none());
    }

    #[test]
    fn timestamps_nondecreasing_in_buffer_order() {
        let (_c, r) = region(TraceConfig::small().flight_recorder());
        for _ in 0..500 {
            r.log_raw(MajorId::TEST, 0, &[0]).unwrap();
        }
        let snap = r.snapshot();
        for seq in snap.oldest_seq()..=snap.current_seq() {
            let buf = snap.buffer(seq).unwrap();
            let mut off = 0;
            let mut last = 0u32;
            while off < buf.len() {
                let h = EventHeader::decode(buf[off]).unwrap();
                assert!(h.timestamp >= last, "ts regression at seq {seq} off {off}");
                last = h.timestamp;
                off += h.len_words as usize;
            }
        }
    }

    #[test]
    fn abandoned_reservation_garbles_buffer_with_zero_header() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        r.log_raw(MajorId::TEST, 0, &[1]).unwrap();
        let at = r.abandon_reservation(4).expect("reservation succeeds");
        // A later event lands beyond the hole; decoding can't reach it.
        r.log_raw(MajorId::TEST, 1, &[2]).unwrap();
        r.flush();
        let buf = r.take_buffer().unwrap();
        assert!(!buf.complete, "abandoned words never commit");
        assert_eq!(buf.expected_words - buf.committed_words, 4);
        let parsed = crate::reader::parse_buffer(0, 0, &buf.words, None);
        assert!(parsed
            .notes
            .iter()
            .any(|n| matches!(n, crate::reader::GarbleNote::ZeroHeader { offset } if *offset as u64 == at)));
        // Events before the tear survive.
        assert!(parsed
            .events
            .iter()
            .any(|e| e.major == MajorId::TEST && e.minor == 0));
        assert!(
            !parsed
                .events
                .iter()
                .any(|e| e.major == MajorId::TEST && e.minor == 1),
            "the event beyond the tear is unreachable"
        );
    }

    #[test]
    fn desync_commit_flags_buffer_incomplete() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        let payload = [1u64; 10];
        while r.index() < cfg.buffer_words as u64 {
            r.log_raw(MajorId::TEST, 0, &payload).unwrap();
        }
        r.desync_commit(0, -3);
        let short = r.take_buffer().unwrap();
        assert!(!short.complete, "short count must flag garble");
        assert_eq!(short.expected_words - short.committed_words, 3);

        while r.index() < 2 * cfg.buffer_words as u64 {
            r.log_raw(MajorId::TEST, 0, &payload).unwrap();
        }
        r.desync_commit(1, 5);
        let over = r.take_buffer().unwrap();
        assert!(!over.complete, "overshoot must flag garble too");
        assert_eq!(over.committed_words - over.expected_words, 5);
    }

    #[test]
    fn corrupt_word_tears_exactly_one_word() {
        let cfg = TraceConfig::small();
        let (_c, r) = region(cfg);
        r.log_raw(MajorId::TEST, 0, &[7, 8]).unwrap();
        let before = r.snapshot();
        r.corrupt_word(ANCHOR_WORDS as u64, 0xdead_beef);
        let after = r.snapshot();
        for (i, (b, a)) in before.words.iter().zip(after.words.iter()).enumerate() {
            if i == ANCHOR_WORDS {
                assert_eq!(*a, *b ^ 0xdead_beef);
            } else {
                assert_eq!(a, b, "word {i} must be untouched");
            }
        }
    }

    #[test]
    fn concurrent_producers_never_corrupt_the_chain() {
        // The core lockless property: many threads, one region, every
        // completed buffer chains perfectly and commit counts match.
        let cfg = TraceConfig {
            buffer_words: 512,
            buffers_per_cpu: 4,
            mode: Mode::Stream,
        };
        let clock = Arc::new(ktrace_clock::SyncClock::new());
        let r = Arc::new(CpuRegion::new(cfg, clock, 0));
        let nthreads = 8;
        let per_thread = 3000u64;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Consumer thread drains and validates.
        let rc = r.clone();
        let stop_c = stop.clone();
        let consumer = std::thread::spawn(move || {
            let mut taken = Vec::new();
            loop {
                match rc.take_buffer() {
                    Some(b) => taken.push(b),
                    None if stop_c.load(Ordering::Acquire) => {
                        rc.flush();
                        while let Some(b) = rc.take_buffer() {
                            taken.push(b);
                        }
                        break;
                    }
                    None => std::thread::yield_now(),
                }
            }
            taken
        });

        let producers: Vec<_> = (0..nthreads)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let mut logged = 0u64;
                    for i in 0..per_thread {
                        let payload = [t as u64, i, i ^ t as u64];
                        if r.log_raw(MajorId::TEST, t as u16, &payload[..(i % 4) as usize])
                            .is_ok()
                        {
                            logged += 1;
                        }
                    }
                    logged
                })
            })
            .collect();

        let logged: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        stop.store(true, Ordering::Release);
        let buffers = consumer.join().unwrap();

        let mut events = 0u64;
        let mut marked_dropped = 0u64;
        for b in &buffers {
            assert!(
                b.complete,
                "buffer seq {} garbled: {}/{}",
                b.seq, b.committed_words, b.expected_words
            );
            let mut off = 0;
            while off < b.words.len() {
                let h = EventHeader::decode(b.words[off])
                    .unwrap_or_else(|e| panic!("zero header at seq {} off {off}: {e}", b.seq));
                assert!(
                    off + h.len_words as usize <= b.words.len(),
                    "event overruns buffer"
                );
                if h.major == MajorId::CONTROL && h.minor == control::DROPPED {
                    marked_dropped += b.words[off + 1];
                }
                if h.major == MajorId::TEST {
                    events += 1;
                    // Payload integrity: first two words are (thread, i).
                    if h.payload_words() >= 2 {
                        let t = b.words[off + 1];
                        let i = b.words[off + 2];
                        assert_eq!(h.minor as u64, t);
                        assert!(
                            h.payload_words() != 3 || b.words[off + 3] == (i ^ t),
                            "third payload word must be thread ^ index"
                        );
                    }
                }
                off += h.len_words as usize;
            }
            assert_eq!(off, b.words.len(), "chain must end exactly at boundary");
        }
        // Events still sitting in undrained buffers (flush happened before
        // the last take loop, so there are none) plus drops must account for
        // every attempt. Drops live either in the pending counter or in
        // already-written DROPPED markers.
        assert_eq!(events, logged, "every logged event appears exactly once");
        assert_eq!(
            logged + marked_dropped + r.dropped_pending(),
            nthreads as u64 * per_thread,
            "attempted = logged + dropped"
        );
    }
}
