//! Buffer geometry and operating mode.

use crate::error::CoreError;
use ktrace_format::MAX_EVENT_WORDS;

/// Words claimed for the time-anchor event at the start of every buffer:
/// header + full 64-bit timestamp + CPU id.
pub const ANCHOR_WORDS: usize = 3;

/// Words claimed for a dropped-buffer marker event: header + count.
pub const DROPPED_WORDS: usize = 2;

/// What happens when the producer laps the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// A consumer drains completed buffers ("written out to disk or streamed
    /// over the network"). If it falls behind, new events are *dropped* and a
    /// dropped-count marker is logged when space reappears.
    Stream,
    /// No consumer: the region is a circular flight recorder (paper §4.2);
    /// old buffers are silently overwritten and [`dump`] recovers the most
    /// recent activity after a crash.
    ///
    /// [`dump`]: crate::logger::TraceLogger::flight_dump
    FlightRecorder,
}

/// Geometry and mode of a per-CPU trace region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Words per buffer — the medium-scale alignment boundary (§3.2; the
    /// paper's example is 128 KiB = 16384 words). Power of two.
    pub buffer_words: usize,
    /// Buffers per CPU region. Power of two, at least 2.
    pub buffers_per_cpu: usize,
    /// Stream or flight-recorder operation.
    pub mode: Mode,
}

impl TraceConfig {
    /// The paper's example geometry: 128 KiB buffers, 8 per CPU (1 MiB/CPU).
    pub fn paper() -> TraceConfig {
        TraceConfig {
            buffer_words: 16 * 1024,
            buffers_per_cpu: 8,
            mode: Mode::Stream,
        }
    }

    /// A small geometry convenient for tests: 1 KiB buffers, 4 per CPU.
    pub fn small() -> TraceConfig {
        TraceConfig {
            buffer_words: 128,
            buffers_per_cpu: 4,
            mode: Mode::Stream,
        }
    }

    /// Same geometry as `self` but in flight-recorder mode.
    pub fn flight_recorder(mut self) -> TraceConfig {
        self.mode = Mode::FlightRecorder;
        self
    }

    /// Total words in one CPU's region.
    pub fn region_words(&self) -> usize {
        self.buffer_words * self.buffers_per_cpu
    }

    /// Largest total event size (header + payload) this geometry accepts: it
    /// must fit in a fresh buffer behind the anchor and a possible dropped
    /// marker, and in the header's 10-bit length field.
    pub fn max_event_words(&self) -> usize {
        MAX_EVENT_WORDS.min(self.buffer_words - ANCHOR_WORDS - DROPPED_WORDS)
    }

    /// Largest payload (data words, excluding the header).
    pub fn max_payload_words(&self) -> usize {
        self.max_event_words() - 1
    }

    /// Validates the geometry.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !self.buffer_words.is_power_of_two() || self.buffer_words < 16 {
            return Err(CoreError::BadConfig(
                "buffer_words must be a power of two >= 16",
            ));
        }
        if !self.buffers_per_cpu.is_power_of_two() || self.buffers_per_cpu < 2 {
            return Err(CoreError::BadConfig(
                "buffers_per_cpu must be a power of two >= 2",
            ));
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            buffer_words: 8 * 1024,
            buffers_per_cpu: 8,
            mode: Mode::Stream,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_valid() {
        TraceConfig::paper().validate().unwrap();
        assert_eq!(TraceConfig::paper().buffer_words * 8, 128 * 1024);
    }

    #[test]
    fn default_and_small_are_valid() {
        TraceConfig::default().validate().unwrap();
        TraceConfig::small().validate().unwrap();
    }

    #[test]
    fn bad_geometries_rejected() {
        let mut c = TraceConfig::small();
        c.buffer_words = 100; // not a power of two
        assert!(c.validate().is_err());
        c = TraceConfig::small();
        c.buffer_words = 8; // too small
        assert!(c.validate().is_err());
        c = TraceConfig::small();
        c.buffers_per_cpu = 1;
        assert!(c.validate().is_err());
        c.buffers_per_cpu = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn max_event_words_respects_both_limits() {
        // Small buffers: limited by buffer size.
        let c = TraceConfig {
            buffer_words: 128,
            buffers_per_cpu: 2,
            mode: Mode::Stream,
        };
        assert_eq!(c.max_event_words(), 128 - ANCHOR_WORDS - DROPPED_WORDS);
        // Large buffers: limited by the 10-bit length field.
        let c = TraceConfig::paper();
        assert_eq!(c.max_event_words(), MAX_EVENT_WORDS);
        assert_eq!(c.max_payload_words(), MAX_EVENT_WORDS - 1);
    }

    #[test]
    fn flight_recorder_builder_sets_mode() {
        assert_eq!(
            TraceConfig::small().flight_recorder().mode,
            Mode::FlightRecorder
        );
    }
}
