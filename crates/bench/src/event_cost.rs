//! E2 + E3: the cost of logging one event, and of the disabled check.
//!
//! Paper §3.2: "A 1-word 64-bit event requires 91 cycles (100 ns on a 1GHz
//! processor) with 11 cycles for each additional 64-bit word logged… The
//! cost of checking the trace mask is 4 machine instructions… The overall
//! performance degradation is less than 1 percent."
//!
//! This is a *measured* experiment: real events through the real lockless
//! logger on this host, with a least-squares fit of cost vs payload words.
//! Absolute numbers differ from 2003 PowerPC hardware; the **shape** —
//! constant base plus a small per-word slope, with a near-free disabled
//! check — is the claim under test.

use crate::util::{bench_logger, linear_fit, time_per_call};
use ktrace_analysis::table::{Align, TextTable};
use ktrace_events::exception;
use ktrace_format::MajorId;
use std::fmt::Write as _;

/// Measured per-event costs.
#[derive(Debug, Clone)]
pub struct EventCosts {
    /// (payload words, ns/event) samples.
    pub per_words: Vec<(usize, f64)>,
    /// Fitted base cost (ns) of a 0-payload event.
    pub base_ns: f64,
    /// Fitted additional cost (ns) per payload word.
    pub per_word_ns: f64,
    /// Cost of a log attempt whose major is mask-disabled.
    pub disabled_ns: f64,
    /// Cost of the empty measurement loop (harness floor).
    pub floor_ns: f64,
}

/// Runs the measurement.
pub fn measure(fast: bool) -> EventCosts {
    let iters = if fast { 40_000 } else { 400_000 };
    let logger = bench_logger(1);
    let handle = logger.handle(0).expect("cpu 0");

    let payload = [0x55u64; 8];
    let mut per_words = Vec::new();
    for words in 0..=8usize {
        let ns = time_per_call(iters, || {
            std::hint::black_box(handle.log_slice(
                MajorId::TEST,
                1,
                std::hint::black_box(&payload[..words]),
            ));
        });
        per_words.push((words, ns));
    }
    let (per_word_ns, base_ns) = linear_fit(
        &per_words
            .iter()
            .map(|&(w, ns)| (w as f64, ns))
            .collect::<Vec<_>>(),
    );

    logger.mask().disable(MajorId::EXCEPTION);
    let disabled_ns = time_per_call(iters * 4, || {
        std::hint::black_box(handle.log1(
            MajorId::EXCEPTION,
            exception::PPC_CALL,
            std::hint::black_box(7),
        ));
    });
    let floor_ns = time_per_call(iters * 4, || {
        std::hint::black_box(std::hint::black_box(7u64).wrapping_add(1));
    });

    EventCosts {
        per_words,
        base_ns,
        per_word_ns,
        disabled_ns,
        floor_ns,
    }
}

/// Renders the E2/E3 report table.
pub fn report(fast: bool) -> String {
    let c = measure(fast);
    let mut out = String::new();
    let _ = writeln!(out, "Per-event logging cost (lockless per-CPU, this host):");
    let mut t = TextTable::new(&[("payload words", Align::Right), ("ns/event", Align::Right)]);
    for &(w, ns) in &c.per_words {
        t.row(vec![w.to_string(), format!("{ns:.1}")]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nfit: {:.1} ns base + {:.2} ns/word   (paper @1GHz PowerPC: ~91 ns base + ~11 ns/word)",
        c.base_ns, c.per_word_ns
    );
    let _ = writeln!(
        out,
        "disabled-major check: {:.2} ns/attempt (floor {:.2} ns)   (paper: 4 instructions)",
        c.disabled_ns, c.floor_ns
    );
    let _ = writeln!(
        out,
        "disabled/enabled ratio: {:.3}  — the always-compiled-in property",
        c.disabled_ns / c.base_ns.max(1e-9)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let c = measure(true);
        // Base cost positive and bounded (not microseconds).
        assert!(
            c.base_ns > 0.0 && c.base_ns < 10_000.0,
            "base {}",
            c.base_ns
        );
        // Cost grows gently with words: slope well under the base.
        assert!(
            c.per_word_ns < c.base_ns,
            "slope {} base {}",
            c.per_word_ns,
            c.base_ns
        );
        // Disabled check is much cheaper than logging.
        assert!(
            c.disabled_ns < c.base_ns / 2.0,
            "disabled {} base {}",
            c.disabled_ns,
            c.base_ns
        );
    }

    #[test]
    fn report_renders() {
        let s = report(true);
        assert!(s.contains("fit:"));
        assert!(s.contains("disabled-major check"));
    }
}
