//! E13: timestamp synchronization by interpolation (the LTT x86 scheme).
//!
//! §4.1: "LTT logs the cheaply available tsc with each event, and only at
//! the beginning and end is the more expensive get_timeOfDay call made
//! allowing synchronization between different processors' buffers through
//! interpolation of the tsc values between the get_timeOfDay values."
//!
//! We inject known per-CPU skew and drift into a [`TscClock`], collect
//! anchor pairs at simulated buffer boundaries, and measure the residual
//! error of the interpolated mapping — including the offset-only (single
//! anchor) fallback, to show why the begin+end pair matters.

use ktrace_analysis::table::{Align, TextTable};
use ktrace_clock::{AnchorPair, ClockSource, ManualClock, TscClock, TscParams, TscSynchronizer};
use std::fmt::Write as _;
use std::sync::Arc;

/// Error statistics for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct InterpError {
    /// Injected drift (ppm).
    pub drift_ppm: f64,
    /// Injected skew (ticks).
    pub skew: i64,
    /// Anchors used for the fit.
    pub anchors: usize,
    /// Worst absolute mapping error over the probed span (ticks = ns).
    pub max_error: u64,
    /// Mean absolute error.
    pub mean_error: f64,
}

/// Measures interpolation error over a `span_ns` window with `anchors`
/// evenly spaced anchor pairs.
pub fn measure(
    drift_ppm: f64,
    skew: i64,
    anchors: usize,
    span_ns: u64,
    probes: usize,
) -> InterpError {
    let inner = Arc::new(ManualClock::new(0, 0));
    let clock = TscClock::new(
        inner.clone(),
        vec![TscParams {
            offset: skew,
            drift_ppm,
        }],
    );
    let mut sync = TscSynchronizer::new();
    // A base offset keeps distorted readings away from the zero clamp (a
    // real TSC never reads negative either; traces never start at t = 0).
    let base = 3_600_000_000_000u64;
    for i in 0..anchors {
        let wall = base + span_ns * i as u64 / (anchors.max(2) - 1) as u64;
        inner.set(wall);
        sync.add_anchor(
            0,
            AnchorPair {
                tsc: clock.now(0),
                wall,
            },
        );
    }
    let mut max_error = 0u64;
    let mut sum = 0f64;
    for i in 0..probes {
        let truth = base + span_ns * (i as u64 * 2 + 1) / (probes as u64 * 2);
        inner.set(truth);
        let est = sync.to_global(0, clock.now(0)).expect("anchored");
        let err = est.abs_diff(truth);
        max_error = max_error.max(err);
        sum += err as f64;
    }
    InterpError {
        drift_ppm,
        skew,
        anchors,
        max_error,
        mean_error: sum / probes as f64,
    }
}

/// E13 report.
pub fn report(fast: bool) -> String {
    let probes = if fast { 200 } else { 2000 };
    let span = 10_000_000_000; // a 10-second trace
    let mut t = TextTable::new(&[
        ("drift ppm", Align::Right),
        ("skew us", Align::Right),
        ("anchors", Align::Right),
        ("max err ns", Align::Right),
        ("mean err ns", Align::Right),
    ]);
    for &(drift, skew) in &[
        (0.0, 0i64),
        (50.0, 1_000_000),
        (200.0, -5_000_000),
        (500.0, 50_000_000),
    ] {
        for &anchors in &[1usize, 2, 8] {
            let e = measure(drift, skew, anchors, span, probes);
            t.row(vec![
                format!("{drift:.0}"),
                format!("{}", skew / 1000),
                anchors.to_string(),
                e.max_error.to_string(),
                format!("{:.0}", e.mean_error),
            ]);
        }
    }
    let mut out = String::from(
        "TSC→global-time interpolation error over a 10 s trace (injected skew/drift):\n",
    );
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\n1 anchor = offset-only (drift uncorrected: error grows with drift·span);\n\
         2 anchors = LTT's begin+end interpolation (drift absorbed; error ~ns)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_anchors_absorb_skew_and_drift() {
        let e = measure(200.0, -5_000_000, 2, 10_000_000_000, 200);
        assert!(e.max_error <= 3, "max error {} ns", e.max_error);
    }

    #[test]
    fn single_anchor_cannot_correct_drift() {
        let one = measure(200.0, 0, 1, 10_000_000_000, 200);
        let two = measure(200.0, 0, 2, 10_000_000_000, 200);
        // 200 ppm over 10 s = up to 2 ms of error for offset-only.
        assert!(one.max_error > 100_000, "one-anchor max {}", one.max_error);
        assert!(two.max_error < one.max_error / 1000);
    }

    #[test]
    fn report_renders() {
        let s = report(true);
        assert!(s.contains("interpolation"));
        assert!(s.contains("anchors"));
    }
}
