//! E7–E11: regenerating the paper's tool figures (Figs. 4–8).
//!
//! The data source is either the virtual-time multiprocessor emitting real
//! events with virtual timestamps (for the multi-CPU figures), or the
//! real-threaded simulator streaming to a real trace file (for Fig. 5's
//! listing-plus-random-access demonstration).

use ktrace_analysis::{
    render_listing, Breakdown, ListingOptions, LockSortKey, LockStats, PcProfile, Timeline,
    TimelineOptions, Trace,
};
use ktrace_core::TraceConfig;
use ktrace_io::{TraceFileReader, TraceSession};
use ktrace_ossim::workload::{micro, sdet};
use ktrace_ossim::{KTracer, Machine, MachineConfig};
use ktrace_vsim::{CostParams, Scheme, VirtualMachine, VmConfig};
use std::fmt::Write as _;
use std::sync::Arc;

fn emission_geometry() -> TraceConfig {
    TraceConfig {
        buffer_words: 16 * 1024,
        buffers_per_cpu: 16,
        ..TraceConfig::default()
    }
}

/// Runs an SDET-like workload on the virtual `ncpus`-way machine and returns
/// the emitted trace.
pub fn sdet_trace(ncpus: usize, fast: bool) -> Trace {
    let mut cfg = VmConfig::new(ncpus);
    cfg.alloc_regions = 1; // leave the allocator contended: Fig. 7 needs it
    let scripts = if fast { 2 * ncpus } else { 6 * ncpus };
    let w = sdet::build(sdet::SdetConfig {
        scripts,
        commands_per_script: 4,
        ..Default::default()
    });
    let mut machine = VirtualMachine::new(cfg, Scheme::LocklessPerCpu, CostParams::default())
        .with_emission(emission_geometry());
    machine.run(&w);
    Trace::from_logger(
        machine.emitted_logger().expect("emission enabled"),
        1_000_000_000,
    )
}

/// E7 / Fig. 7: the lock-contention table.
pub fn report_fig7(fast: bool) -> String {
    // A contended allocator plus SDET background: the paper's situation
    // before the allocator fix.
    let mut cfg = VmConfig::new(8);
    cfg.alloc_regions = 1;
    let n = if fast { 30 } else { 150 };
    let w = micro::alloc_contention(16, n);
    let mut machine = VirtualMachine::new(cfg, Scheme::LocklessPerCpu, CostParams::default())
        .with_emission(emission_geometry());
    machine.run(&w);
    let trace = Trace::from_logger(machine.emitted_logger().expect("emission"), 1_000_000_000);
    let mut stats = LockStats::compute(&trace);
    stats.sort_by(LockSortKey::Time);
    let mut out = stats.render(10, "time");
    let _ = writeln!(
        out,
        "total wait across all locks: {:.3} ms — the number the fix-rerun loop of §4 drives down",
        stats.total_wait_ns() as f64 / 1e6
    );
    out
}

/// E8 / Fig. 6: the PC-sample histogram.
///
/// Fig. 6 profiles a busy server process whose top entry is
/// `FairBLock::_acquire()` — i.e. a lock-contention-bound process. The
/// equivalent situation here: allocator hammering with fine-grained
/// sampling, where spin time lands in the acquire routine.
pub fn report_fig6(fast: bool) -> String {
    let mut cfg = VmConfig::new(8);
    cfg.alloc_regions = 1;
    // Fine sampling resolves the spin loops; fast mode trades resolution for
    // runtime (the allocator queue grows over the run, so late waits are
    // sampled thousands of times at 0.5µs).
    // The sampling period must stay well above the per-tick emission cost
    // (see vmachine's coalescing note), so 2µs is the fine-grained setting.
    cfg.pc_sample_period_ns = Some(if fast { 4_000 } else { 2_000 });
    let n = if fast { 40 } else { 150 };
    let mut machine = VirtualMachine::new(cfg, Scheme::LocklessPerCpu, CostParams::default())
        .with_emission(emission_geometry());
    machine.run(&micro::alloc_contention(16, n));
    let trace = Trace::from_logger(machine.emitted_logger().expect("emission"), 1_000_000_000);
    let profile = PcProfile::compute(&trace);
    // Show the busiest two pids, as the paper shows one exemplar process.
    let mut pids: Vec<u64> = profile.by_pid.keys().copied().collect();
    pids.sort_by_key(|&p| std::cmp::Reverse(profile.samples(p)));
    let mut out = String::new();
    for pid in pids.into_iter().take(2) {
        out.push_str(&profile.render(pid));
        out.push('\n');
    }
    out
}

/// E9 / Fig. 8: the fine-grained per-process breakdown.
pub fn report_fig8(fast: bool) -> String {
    let trace = sdet_trace(4, fast);
    let breakdown = Breakdown::compute(&trace);
    // A command process (most IPC + fault activity) plus the FS server.
    let busiest = breakdown
        .processes
        .values()
        .filter(|p| p.pid > 1)
        .max_by_key(|p| p.ipc_out.calls + p.faults.calls)
        .map(|p| p.pid)
        .unwrap_or(2);
    let mut out = breakdown.render_process(busiest);
    out.push('\n');
    out.push_str(&breakdown.render_process(1)); // baseServers: served-IPC rows
    out
}

/// E10 / Fig. 5: the event listing, from a real trace file, plus the
/// random-access demonstration (§3.2's "middle 5 seconds").
pub fn report_fig5(fast: bool) -> String {
    let dir = std::env::temp_dir().join(format!("ktrace-fig5-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("fig5.ktrace");

    // A real run: the real-threaded machine streaming through a session.
    let clock: Arc<ktrace_clock::SyncClock> = Arc::new(ktrace_clock::SyncClock::new());
    // Small buffers so even a short run spans many records and the
    // random-access window demonstrably touches only a few of them.
    let logger = ktrace_core::TraceLogger::builder()
        .geometry(TraceConfig {
            buffer_words: 512,
            buffers_per_cpu: 16,
            ..TraceConfig::default()
        })
        .clock(clock.clone() as Arc<dyn ktrace_clock::ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");
    ktrace_events::register_all(&logger);
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .create(&path)
        .expect("session");
    let machine = Machine::new(MachineConfig::fast_test(2), Arc::new(KTracer::new(logger)));
    let scripts = if fast { 4 } else { 8 };
    machine.run(sdet::build(sdet::SdetConfig {
        scripts,
        commands_per_script: 3,
        ..Default::default()
    }));
    assert!(session.finish().lossless(), "session sink failed");

    let trace = Trace::from_file(&path).expect("read back");
    let mut out = String::from("First 25 events (cf. Fig. 5):\n");
    out.push_str(&render_listing(
        &trace,
        &ListingOptions {
            hide_control: true,
            limit: 25,
            ..Default::default()
        },
    ));

    // Random access: jump straight into the middle half of the trace.
    let span = trace.end() - trace.origin();
    let (t0, t1) = (trace.origin() + span / 4, trace.origin() + 3 * span / 4);
    let mut reader = TraceFileReader::open(&path).expect("open");
    let mid = reader.events_between(t0, t1).expect("window read");
    let _ = writeln!(
        out,
        "\nrandom access: records={} total; middle-window read touched only overlapping \
         records and returned {} events",
        reader.record_count(),
        mid.len()
    );
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// E11 / Fig. 4: the timeline, with the paper's own marked events.
pub fn report_fig4(fast: bool) -> String {
    let trace = sdet_trace(8, fast);
    let timeline = Timeline::build(
        &trace,
        &TimelineOptions {
            width: 100,
            marks: vec![
                "TRACE_USER_RUN_UL_LOADER".into(),
                "TRACE_USER_RETURNED_MAIN".into(),
            ],
            ..Default::default()
        },
    );
    let mut out = timeline.render_ascii();

    // Zoom, as the kmon user would: the middle fifth.
    let span = trace.end() - trace.origin();
    let zoomed = Timeline::build(
        &trace,
        &TimelineOptions {
            width: 100,
            t0: Some(trace.origin() + 2 * span / 5),
            t1: Some(trace.origin() + 3 * span / 5),
            marks: vec!["TRACE_SYSCALL_ENTRY".into()],
        },
    );
    out.push_str("\nzoomed (middle fifth):\n");
    out.push_str(&zoomed.render_ascii());

    // SVG artifact for the "graphical" half of the claim.
    let svg_path = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(svg_path).is_ok() {
        let file = svg_path.join("fig4_timeline.svg");
        if std::fs::write(&file, timeline.render_svg()).is_ok() {
            let _ = writeln!(out, "\nSVG written to {}", file.display());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_top_lock_is_the_allocator_chain() {
        let s = report_fig7(true);
        assert!(s.contains("AllocRegionManager::alloc"), "{s}");
        assert!(s.contains("GMalloc::gMalloc()"));
        assert!(s.contains("top 10 contended locks by time"));
    }

    #[test]
    fn fig6_profiles_contain_known_functions() {
        let s = report_fig6(true);
        assert!(s.contains("histogram for pid"), "{s}");
        assert!(s.contains("count") && s.contains("method"));
        // The paper's Fig. 6 headline: lock acquisition tops the histogram
        // of a contention-bound process.
        assert!(s.contains("FairBLock::_acquire()"), "{s}");
    }

    #[test]
    fn fig8_contains_syscall_and_server_rows() {
        let s = report_fig8(true);
        assert!(s.contains("Ex-process"), "{s}");
        assert!(s.contains("served IPC"));
        assert!(s.contains("baseServers"));
    }

    #[test]
    fn fig5_lists_and_windows() {
        let s = report_fig5(true);
        assert!(s.contains("TRACE_") || s.contains("TRC_"), "{s}");
        assert!(s.contains("random access"), "{s}");
    }

    #[test]
    fn fig4_renders_lanes_and_marks() {
        let s = report_fig4(true);
        assert!(s.contains("cpu0"), "{s}");
        assert!(s.contains("cpu7"), "8-way timeline expected");
        assert!(s.contains("TRACE_USER_RUN_UL_LOADER"));
        assert!(s.contains("zoomed"));
    }
}
