//! E1 / Figure 3: SDET throughput scaling with tracing compiled in.
//!
//! The paper's headline graph: SDET throughput vs processors, with the trace
//! infrastructure compiled in, demonstrating (a) near-linear scaling of the
//! tuned system and (b) that leaving the (masked-off) trace statements in
//! costs under 1 %.
//!
//! Host note: one physical core, so the curve is produced on the virtual-
//! time multiprocessor with cost models calibrated from the E2 measurement;
//! see DESIGN.md's substitution table.

use crate::event_cost;
use ktrace_analysis::table::{Align, TextTable};
use ktrace_ossim::workload::sdet::{build, SdetConfig};
use ktrace_vsim::{CostParams, Scheme, VirtualMachine, VmConfig};
use std::fmt::Write as _;

/// One row of the Fig. 3 data.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Simulated CPU count.
    pub ncpus: usize,
    /// Scripts/hour with tracing compiled out.
    pub compiled_out: f64,
    /// Scripts/hour with tracing compiled in but masked off (the paper's
    /// benchmarking configuration).
    pub masked_off: f64,
    /// Scripts/hour with tracing fully enabled.
    pub enabled: f64,
    /// Added busy work of the masked-off configuration, as a fraction of
    /// the compiled-out busy work (the <1% claim, free of makespan
    /// alignment noise).
    pub masked_cost: f64,
    /// Added busy work of enabled tracing, as a fraction.
    pub enabled_cost: f64,
}

/// Cost parameters calibrated from this host's measured per-event numbers.
pub fn calibrated_params(fast: bool) -> CostParams {
    let measured = event_cost::measure(fast);
    CostParams {
        check_ns: measured.disabled_ns.max(0.5),
        per_event_ns: measured.base_ns.max(10.0),
        per_word_ns: measured.per_word_ns.max(0.5),
        ..CostParams::default()
    }
}

pub(crate) fn run_point(
    ncpus: usize,
    scheme: Scheme,
    params: CostParams,
    scripts_per_cpu: usize,
) -> ktrace_vsim::VReport {
    let mut cfg = VmConfig::new(ncpus);
    // The tuned system: allocator contention fixed (the §4 story).
    cfg.alloc_regions = 64;
    // Fine-grained wait polling: the makespan is otherwise quantized by the
    // poll period, which would swamp the sub-1% masked-off cost under test.
    cfg.idle_quantum_ns = 1_000;
    let w = build(SdetConfig {
        scripts: scripts_per_cpu * ncpus,
        commands_per_script: 5,
        ..Default::default()
    });
    VirtualMachine::new(cfg, scheme, params).run(&w)
}

pub(crate) fn busy(r: &ktrace_vsim::VReport) -> f64 {
    r.cpu_busy_ns.iter().sum::<u64>() as f64
}

/// Produces the scaling curve with explicit cost parameters.
pub fn measure_with(params: CostParams, fast: bool) -> Vec<ScalingPoint> {
    let cpus: &[usize] = if fast {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 12, 16, 24]
    };
    let scripts_per_cpu = if fast { 4 } else { 8 };
    cpus.iter()
        .map(|&ncpus| {
            let out = run_point(ncpus, Scheme::CompiledOut, params, scripts_per_cpu);
            let masked = run_point(ncpus, Scheme::MaskedOff, params, scripts_per_cpu);
            let on = run_point(ncpus, Scheme::LocklessPerCpu, params, scripts_per_cpu);
            ScalingPoint {
                ncpus,
                compiled_out: out.throughput_per_hour(),
                masked_off: masked.throughput_per_hour(),
                enabled: on.throughput_per_hour(),
                masked_cost: (busy(&masked) - busy(&out)) / busy(&out),
                enabled_cost: (busy(&on) - busy(&out)) / busy(&out),
            }
        })
        .collect()
}

/// Produces the scaling curve with host-calibrated cost parameters.
///
/// Note: under `cargo test` (debug build) the calibration measures an
/// unoptimized logger, inflating every tracing cost; release builds measure
/// the real thing. The *shape* tests therefore use the paper-calibrated
/// [`CostParams::default`], while this report shows the host calibration.
pub fn measure(fast: bool) -> Vec<ScalingPoint> {
    measure_with(calibrated_params(fast), fast)
}

/// Renders the Fig. 3 table.
pub fn report(fast: bool) -> String {
    let points = measure(fast);
    let base = points[0].compiled_out;
    let mut t = TextTable::new(&[
        ("cpus", Align::Right),
        ("compiled-out (scripts/h)", Align::Right),
        ("masked-off", Align::Right),
        ("enabled", Align::Right),
        ("scale", Align::Right),
        ("masked cost", Align::Right),
        ("enabled cost", Align::Right),
    ]);
    for p in &points {
        t.row(vec![
            p.ncpus.to_string(),
            format!("{:.2e}", p.compiled_out),
            format!("{:.2e}", p.masked_off),
            format!("{:.2e}", p.enabled),
            format!("{:.2}x", p.compiled_out / base),
            format!("{:+.2}%", 100.0 * p.masked_cost),
            format!("{:+.1}%", 100.0 * p.enabled_cost),
        ]);
    }
    let mut out = String::from(
        "SDET-like throughput vs CPUs (virtual-time multiprocessor, calibrated costs):\n",
    );
    out.push_str(&t.render());
    let last = points.last().expect("nonempty");
    let _ = writeln!(
        out,
        "\nscaling at {} cpus: {:.2}x (paper: near-linear); masked-off cost stays ~0 (paper: <1%)",
        last.ncpus,
        last.compiled_out / base
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shape_holds() {
        // Paper-calibrated costs: debug-build self-calibration would inflate
        // the per-check cost by the unoptimized-build factor.
        let pts = measure_with(CostParams::default(), true);
        let first = &pts[0];
        let last = pts.last().unwrap();
        // Near-linear: at least 60% efficiency at the largest point.
        let scale = last.compiled_out / first.compiled_out;
        assert!(
            scale > 0.6 * last.ncpus as f64 / first.ncpus as f64,
            "scale {scale} at {} cpus",
            last.ncpus
        );
        // Masked-off adds under 1% of work at every point (the §3.2 claim).
        for p in &pts {
            assert!(
                p.masked_cost.abs() < 0.01,
                "masked-off cost {} at {} cpus",
                p.masked_cost,
                p.ncpus
            );
        }
        // Enabled tracing costs something but stays in the same league.
        assert!(last.enabled > 0.5 * last.compiled_out);
        assert!(last.enabled_cost > 0.0 && last.enabled_cost < 0.5);
    }
}
