//! Runs every experiment in paper order (the source of EXPERIMENTS.md's
//! measured values). Set KTRACE_BENCH_FULL=1 for longer runs.
fn main() {
    let fast = !ktrace_bench::util::full_requested();
    for (id, report) in ktrace_bench::run_all(fast) {
        println!("==================================================================");
        println!("{id}");
        println!("==================================================================");
        println!("{report}");
    }
}
