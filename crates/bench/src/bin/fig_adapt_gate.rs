//! E23: adaptive-sampling overhead gate. Prints the report, writes the
//! `BENCH_adapt.json` artifact (first argument, default
//! `BENCH_adapt.json`), and exits nonzero if rate-1 sampling costs more
//! than the 1% gate.
use ktrace_bench::adapt_gate;

fn main() {
    let fast = !ktrace_bench::util::full_requested();
    let g = adapt_gate::measure(fast);
    println!("{}", adapt_gate::render(&g));
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_adapt.json".to_string());
    std::fs::write(&path, adapt_gate::to_json(&g)).expect("write artifact");
    eprintln!("wrote {path}");
    if !g.pass {
        std::process::exit(1);
    }
}
