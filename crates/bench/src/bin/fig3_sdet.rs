//! E1 / Fig. 3: SDET throughput scaling.
fn main() {
    println!(
        "{}",
        ktrace_bench::sdet_fig3::report(!ktrace_bench::util::full_requested())
    );
}
