//! E5: per-CPU buffers vs a single shared buffer.
fn main() {
    println!(
        "{}",
        ktrace_bench::schemes::report_percpu_vs_global(!ktrace_bench::util::full_requested())
    );
}
