//! E12: variable-length vs fixed-slot space per event.
fn main() {
    println!(
        "{}",
        ktrace_bench::filler::report_var_vs_fixed(!ktrace_bench::util::full_requested())
    );
}
