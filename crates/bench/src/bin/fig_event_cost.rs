//! E2 + E3: per-event logging cost and the disabled-check cost.
fn main() {
    println!(
        "{}",
        ktrace_bench::event_cost::report(!ktrace_bench::util::full_requested())
    );
}
