//! E20: telemetry overhead gate. Prints the report, writes the
//! `BENCH_telemetry.json` artifact (first argument, default
//! `BENCH_telemetry.json`), and exits nonzero if telemetry costs more than
//! the 1% gate.
use ktrace_bench::telemetry_gate;

fn main() {
    let fast = !ktrace_bench::util::full_requested();
    let g = telemetry_gate::measure(fast);
    println!("{}", telemetry_gate::render(&g));
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());
    std::fs::write(&path, telemetry_gate::to_json(&g)).expect("write artifact");
    eprintln!("wrote {path}");
    if !g.pass {
        std::process::exit(1);
    }
}
