//! E11 / Fig. 4: the kmon-style timeline (ASCII + SVG artifact).
fn main() {
    println!(
        "{}",
        ktrace_bench::tools::report_fig4(!ktrace_bench::util::full_requested())
    );
}
