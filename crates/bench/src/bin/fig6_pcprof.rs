//! E8 / Fig. 6: statistical PC-sample profile.
fn main() {
    println!(
        "{}",
        ktrace_bench::tools::report_fig6(!ktrace_bench::util::full_requested())
    );
}
