//! E13: TSC interpolation error under injected skew and drift.
fn main() {
    println!(
        "{}",
        ktrace_bench::tsc::report(!ktrace_bench::util::full_requested())
    );
}
