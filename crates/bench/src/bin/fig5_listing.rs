//! E10 / Fig. 5: the event listing, plus random access into the stream.
fn main() {
    println!(
        "{}",
        ktrace_bench::tools::report_fig5(!ktrace_bench::util::full_requested())
    );
}
