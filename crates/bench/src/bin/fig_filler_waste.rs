//! E6: filler waste and boundary alignment statistics.
fn main() {
    println!(
        "{}",
        ktrace_bench::filler::report_filler(!ktrace_bench::util::full_requested())
    );
}
