//! E4: lockless vs locking logger (the §4.1 order-of-magnitude claim).
fn main() {
    println!(
        "{}",
        ktrace_bench::schemes::report_lockless_vs_locking(!ktrace_bench::util::full_requested())
    );
}
