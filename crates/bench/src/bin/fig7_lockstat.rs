//! E7 / Fig. 7: the lock-contention analysis table.
fn main() {
    println!(
        "{}",
        ktrace_bench::tools::report_fig7(!ktrace_bench::util::full_requested())
    );
}
