//! E9 / Fig. 8: fine-grained per-process time breakdown.
fn main() {
    println!(
        "{}",
        ktrace_bench::tools::report_fig8(!ktrace_bench::util::full_requested())
    );
}
