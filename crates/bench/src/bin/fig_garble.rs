//! E14: garble and dropped-event detection.
fn main() {
    println!(
        "{}",
        ktrace_bench::garble::report(!ktrace_bench::util::full_requested())
    );
}
