//! E4 + E5: comparing logging schemes.
//!
//! E4 reproduces §4.1: applying the lockless/per-CPU technology to LTT's
//! locking logger produced "an order of magnitude performance improvement".
//! E5 isolates the per-CPU-buffer half of that win: the identical lockless
//! algorithm against one shared buffer.
//!
//! Both have a *measured* single-core part (per-event cost of each sink on
//! this host, where only the serialization cost structure differs) and a
//! *modelled* multiprocessor part (virtual time, where the queueing on the
//! shared resource appears).

use crate::sdet_fig3::calibrated_params;
use crate::util::{bench_logger, time_per_call};
use ktrace_analysis::table::{Align, TextTable};
use ktrace_baselines::{
    EventSink, FixedSlotSink, GlobalCasSink, LockingSink, LocklessSink, StaleTsSink, SyscallSink,
};
use ktrace_clock::SyncClock;
use ktrace_core::TraceConfig;
use ktrace_format::MajorId;
use ktrace_ossim::workload::sdet::{build, SdetConfig};
use ktrace_vsim::{Scheme, VirtualMachine, VmConfig};
use std::fmt::Write as _;
use std::sync::Arc;

/// Measured single-thread ns/event for every sink on this host.
pub fn measure_sinks(fast: bool) -> Vec<(&'static str, f64)> {
    let iters = if fast { 20_000 } else { 200_000 };
    let clock = Arc::new(SyncClock::new());
    let sinks: Vec<Box<dyn EventSink>> = vec![
        Box::new(LocklessSink::new(bench_logger(1))),
        Box::new(GlobalCasSink::new(TraceConfig::default(), clock.clone())),
        Box::new(LockingSink::new(clock.clone(), 1 << 16, 120)),
        Box::new(FixedSlotSink::new(clock.clone(), 1, 8, 4096)),
        Box::new(SyscallSink::new(LocklessSink::new(bench_logger(1)), 400)),
    ];
    sinks
        .iter()
        .map(|sink| {
            let payload = [1u64, 2];
            let ns = time_per_call(iters, || {
                std::hint::black_box(sink.log(0, MajorId::TEST, 1, std::hint::black_box(&payload)));
            });
            (sink.name(), ns)
        })
        .collect()
}

/// Modelled total tracing overhead for one scheme at `ncpus` under SDET.
fn modelled_overhead(scheme: Scheme, ncpus: usize, fast: bool) -> (u64, u64) {
    let params = calibrated_params(fast);
    let mut cfg = VmConfig::new(ncpus);
    cfg.alloc_regions = 64;
    let w = build(SdetConfig {
        scripts: 4 * ncpus,
        commands_per_script: 4,
        ..Default::default()
    });
    let r = VirtualMachine::new(cfg, scheme, params).run(&w);
    (r.trace_overhead_ns, r.events_logged)
}

/// E4 report: lockless vs locking (vs syscall) on host and in the model.
pub fn report_lockless_vs_locking(fast: bool) -> String {
    let mut out = String::from("Measured single-thread cost per 2-word event (this host):\n");
    let mut t = TextTable::new(&[("scheme", Align::Left), ("ns/event", Align::Right)]);
    let measured = measure_sinks(fast);
    for (name, ns) in &measured {
        t.row(vec![name.to_string(), format!("{ns:.0}")]);
    }
    out.push_str(&t.render());

    out.push_str("\nModelled per-event overhead under SDET (virtual multiprocessor):\n");
    let mut t = TextTable::new(&[
        ("cpus", Align::Right),
        ("lockless ns/ev", Align::Right),
        ("locking ns/ev", Align::Right),
        ("ratio", Align::Right),
    ]);
    let cpus: &[usize] = if fast {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 24]
    };
    let mut last_ratio = 0.0;
    for &p in cpus {
        let (lockless, ev1) = modelled_overhead(Scheme::LocklessPerCpu, p, fast);
        let (locking, ev2) = modelled_overhead(Scheme::LockingGlobal, p, fast);
        let a = lockless as f64 / ev1.max(1) as f64;
        let b = locking as f64 / ev2.max(1) as f64;
        last_ratio = b / a;
        t.row(vec![
            p.to_string(),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{last_ratio:.1}x"),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nat scale the locking scheme is {last_ratio:.0}x worse (paper §4.1: \"an order of magnitude\")"
    );
    out
}

/// E5 report: per-CPU vs single shared buffer.
pub fn report_percpu_vs_global(fast: bool) -> String {
    let mut out =
        String::from("Per-CPU vs shared-buffer lockless logging (modelled per-event cost):\n");
    let mut t = TextTable::new(&[
        ("cpus", Align::Right),
        ("per-cpu ns/ev", Align::Right),
        ("shared ns/ev", Align::Right),
        ("penalty", Align::Right),
    ]);
    let cpus: &[usize] = if fast {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 24]
    };
    for &p in cpus {
        let (percpu, ev1) = modelled_overhead(Scheme::LocklessPerCpu, p, fast);
        let (shared, ev2) = modelled_overhead(Scheme::LocklessGlobal, p, fast);
        let a = percpu as f64 / ev1.max(1) as f64;
        let b = shared as f64 / ev2.max(1) as f64;
        t.row(vec![
            p.to_string(),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{:.1}x", b / a),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nper-CPU cost is flat in CPU count; the shared index line bounces and queues (§2's \
         \"all accesses to trace structures on separate processors [are] independent\")\n",
    );
    out
}

/// E17: the timestamp-re-read ablation (§3.1).
pub fn report_stale_ablation(fast: bool) -> String {
    let iters = if fast { 8_000 } else { 40_000 };
    let clock: Arc<dyn ktrace_clock::ClockSource> = Arc::new(SyncClock::new());
    let run = |sink: Arc<StaleTsSink>| {
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..iters {
                        s.log(t, MajorId::TEST, i as u16, &[i as u64]);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("worker");
        }
        sink.inversions()
    };
    // The broken protocol needs only a handful of runs to show inversions.
    let mut stale_inversions = 0;
    for _ in 0..10 {
        stale_inversions += run(Arc::new(StaleTsSink::new_stale(clock.clone(), 1 << 21)));
        if stale_inversions > 0 && fast {
            break;
        }
    }
    let reread_inversions = run(Arc::new(StaleTsSink::new_correct(clock.clone(), 1 << 21)));
    format!(
        "timestamp-ordering ablation (4 threads, widened interrupt window):\n\
         stale protocol (ts before CAS loop): {stale_inversions} buffer-order inversions\n\
         paper protocol (ts re-read per attempt): {reread_inversions} inversions\n\
         §3.1: \"processes must re-determine the timestamp during each attempt\"\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_sinks_have_sane_costs() {
        // Timing comparisons on a loaded single-core test host are noisy, so
        // exaggerate the deliberate costs until they dominate the noise: a
        // 20µs IRQ window and a 20µs syscall must each be clearly slower
        // than the lockless path.
        let clock = Arc::new(SyncClock::new());
        let lockless = LocklessSink::new(bench_logger(1));
        let locking = LockingSink::new(clock.clone(), 1 << 16, 20_000);
        let syscall = SyscallSink::new(LocklessSink::new(bench_logger(1)), 20_000);
        let payload = [1u64, 2];
        let cost = |sink: &dyn EventSink| {
            time_per_call(400, || {
                std::hint::black_box(sink.log(0, MajorId::TEST, 1, std::hint::black_box(&payload)));
            })
        };
        let base = cost(&lockless);
        assert!(cost(&locking) > base + 10_000.0, "irq window must dominate");
        assert!(
            cost(&syscall) > base + 10_000.0,
            "kernel crossing must dominate"
        );
    }

    #[test]
    fn modelled_locking_degrades_with_cpus() {
        let (l1, e1) = modelled_overhead(Scheme::LockingGlobal, 1, true);
        let (l8, e8) = modelled_overhead(Scheme::LockingGlobal, 8, true);
        let per1 = l1 as f64 / e1 as f64;
        let per8 = l8 as f64 / e8 as f64;
        assert!(per8 > 2.0 * per1, "locking per-event {per1} -> {per8}");
        // Per-CPU stays flat.
        let (p1, pe1) = modelled_overhead(Scheme::LocklessPerCpu, 1, true);
        let (p8, pe8) = modelled_overhead(Scheme::LocklessPerCpu, 8, true);
        let a = p1 as f64 / pe1 as f64;
        let b = p8 as f64 / pe8 as f64;
        assert!((b / a) < 1.2, "per-cpu per-event {a} -> {b}");
    }

    #[test]
    fn reports_render() {
        assert!(report_lockless_vs_locking(true).contains("order of magnitude"));
        assert!(report_percpu_vs_global(true).contains("per-cpu"));
    }
}
