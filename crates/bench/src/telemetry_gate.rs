//! E20: the telemetry overhead gate.
//!
//! The self-metrics of `ktrace-telemetry` ride the hot reservation path:
//! every logged event pays one relaxed counter increment plus one histogram
//! observation of the reservation wait. The gate asserts that this
//! self-observability keeps the paper's economics intact — telemetry must
//! add **less than 1%** to the Fig. 3-style SDET cost.
//!
//! Method (measured + modelled, like E1):
//!
//! 1. *Measure* the per-event telemetry work telemetry **adds** in
//!    isolation on this host (`observe_reserve_wait`, floor-subtracted —
//!    `tally_event` replaces the per-event counter the region already kept
//!    and so adds nothing), and the full per-event logging cost (E2's fit,
//!    which already *includes* the telemetry since it is compiled in).
//!    Their ratio is telemetry's share of the event cost.
//! 2. *Model* the SDET run on the virtual-time multiprocessor twice with
//!    paper-anchored costs: per-event cost as shipped vs. per-event cost
//!    with the telemetry share stripped out. (Paper-anchored, not
//!    self-calibrated, for the same reason as E1's shape test: a debug
//!    build would inflate the absolute numbers but the *share* transfers.)
//! 3. Gate on the added busy-work fraction.

use crate::event_cost;
use crate::sdet_fig3::{busy, run_point};
use crate::util::time_per_call;
use ktrace_analysis::table::{Align, TextTable};
use ktrace_telemetry::Telemetry;
use ktrace_vsim::{CostParams, Scheme};
use std::fmt::Write as _;

/// The gate: telemetry may add at most this fraction of SDET busy work.
pub const MAX_OVERHEAD: f64 = 0.01;

/// Everything the gate measured and decided, for the report and the
/// `BENCH_telemetry.json` artifact.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Measured cost (ns) of the per-event telemetry work *added* to the
    /// hot path (the reservation-wait observation), in isolation.
    pub tally_ns: f64,
    /// Measured full per-event logging cost (ns), telemetry included.
    pub event_ns: f64,
    /// Telemetry's share of the per-event cost.
    pub tally_fraction: f64,
    /// Modelled CPUs of the SDET point.
    pub ncpus: usize,
    /// Modelled SDET busy work (ns) with telemetry compiled in.
    pub busy_with: f64,
    /// Modelled SDET busy work (ns) with the telemetry share stripped.
    pub busy_without: f64,
    /// Modelled throughput (scripts/hour) with telemetry.
    pub throughput_with: f64,
    /// Modelled throughput (scripts/hour) without telemetry.
    pub throughput_without: f64,
    /// Added busy-work fraction: `(with - without) / without`.
    pub overhead: f64,
    /// The gate threshold ([`MAX_OVERHEAD`]).
    pub threshold: f64,
    /// Did the gate pass?
    pub pass: bool,
}

/// Runs the measurement and the model, returning the gate verdict.
pub fn measure(fast: bool) -> GateResult {
    let iters = if fast { 200_000 } else { 2_000_000 };

    // 1a. The telemetry work a successfully logged event *adds*: the
    // reservation-wait observation. (The event count itself replaces the
    // region's pre-existing counter.) The wait value alternates zero and
    // nonzero, which is pessimistic: real uncontended reservations observe
    // zero, the cheaper branch.
    let tel = Telemetry::new(1);
    let mut i = 0u64;
    let raw_ns = time_per_call(iters, || {
        tel.cpu(0)
            .observe_reserve_wait(std::hint::black_box(i & 0x3ff));
        i = i.wrapping_add(1);
    });
    let floor_ns = time_per_call(iters, || {
        std::hint::black_box(std::hint::black_box(7u64).wrapping_add(1));
    });
    let tally_ns = (raw_ns - floor_ns).max(0.01);

    // 1b. The full per-event cost, telemetry included (it is compiled in).
    let costs = event_cost::measure(fast);
    let event_ns = costs.base_ns.max(1.0);
    let tally_fraction = (tally_ns / event_ns).min(1.0);

    // 2. Model the SDET point twice. Paper-anchored per-event cost, with
    // the measured telemetry share stripped for the "without" run.
    let with = CostParams::default();
    let without = CostParams {
        per_event_ns: with.per_event_ns * (1.0 - tally_fraction),
        ..with
    };
    let ncpus = 8;
    let scripts_per_cpu = if fast { 4 } else { 8 };
    let on_with = run_point(ncpus, Scheme::LocklessPerCpu, with, scripts_per_cpu);
    let on_without = run_point(ncpus, Scheme::LocklessPerCpu, without, scripts_per_cpu);

    let busy_with = busy(&on_with);
    let busy_without = busy(&on_without);
    let overhead = (busy_with - busy_without) / busy_without;
    GateResult {
        tally_ns,
        event_ns,
        tally_fraction,
        ncpus,
        busy_with,
        busy_without,
        throughput_with: on_with.throughput_per_hour(),
        throughput_without: on_without.throughput_per_hour(),
        overhead,
        threshold: MAX_OVERHEAD,
        pass: overhead < MAX_OVERHEAD,
    }
}

/// Renders the gate result as the `BENCH_telemetry.json` artifact.
pub fn to_json(g: &GateResult) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E20 telemetry overhead gate\",\n",
            "  \"tally_ns\": {:.4},\n",
            "  \"event_ns\": {:.4},\n",
            "  \"tally_fraction\": {:.6},\n",
            "  \"ncpus\": {},\n",
            "  \"busy_with_ns\": {:.0},\n",
            "  \"busy_without_ns\": {:.0},\n",
            "  \"throughput_with_per_hour\": {:.2},\n",
            "  \"throughput_without_per_hour\": {:.2},\n",
            "  \"overhead_fraction\": {:.6},\n",
            "  \"threshold\": {:.6},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        g.tally_ns,
        g.event_ns,
        g.tally_fraction,
        g.ncpus,
        g.busy_with,
        g.busy_without,
        g.throughput_with,
        g.throughput_without,
        g.overhead,
        g.threshold,
        g.pass
    )
}

/// Renders the E20 report.
pub fn report(fast: bool) -> String {
    render(&measure(fast))
}

/// Renders an already-measured gate result.
pub fn render(g: &GateResult) -> String {
    let mut out =
        String::from("Telemetry self-metrics overhead (measured share, modelled SDET):\n");
    let mut t = TextTable::new(&[("quantity", Align::Left), ("value", Align::Right)]);
    t.row(vec![
        "per-event telemetry work added".into(),
        format!("{:.2} ns", g.tally_ns),
    ]);
    t.row(vec![
        "per-event logging cost (incl. telemetry)".into(),
        format!("{:.2} ns", g.event_ns),
    ]);
    t.row(vec![
        "telemetry share of event cost".into(),
        format!("{:.2}%", 100.0 * g.tally_fraction),
    ]);
    t.row(vec![
        format!("SDET busy work @{} cpus, with telemetry", g.ncpus),
        format!("{:.3e} ns", g.busy_with),
    ]);
    t.row(vec![
        "SDET busy work, telemetry stripped".into(),
        format!("{:.3e} ns", g.busy_without),
    ]);
    t.row(vec![
        "added busy work".into(),
        format!("{:+.3}%", 100.0 * g.overhead),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\ngate: telemetry overhead {:.3}% < {:.0}% — {}",
        100.0 * g.overhead,
        100.0 * g.threshold,
        if g.pass { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_overhead_under_one_percent() {
        let g = measure(true);
        // A debug build inflates the isolated tally measurement several
        // times more than the full (partly memory-bound) event path, so the
        // measured *share* doesn't transfer — the same reason E1's shape
        // test pins paper params. The hard 1% gate therefore binds in
        // release builds, the configuration CI's telemetry job runs via
        // `fig_telemetry_gate`; debug gets a loosened sanity ceiling.
        let ceiling = if cfg!(debug_assertions) {
            0.05
        } else {
            g.threshold
        };
        assert!(
            g.overhead < ceiling,
            "telemetry adds {:.3}% to SDET busy work (gate {:.1}%); tally {:.2} ns of {:.2} ns/event",
            100.0 * g.overhead,
            100.0 * ceiling,
            g.tally_ns,
            g.event_ns
        );
        // Sanity: the measurement saw real, nonzero costs and the "without"
        // model is genuinely cheaper (the share was actually stripped).
        assert!(g.tally_ns > 0.0 && g.event_ns > g.tally_ns);
        assert!(g.busy_with >= g.busy_without);
        assert!(g.throughput_without >= g.throughput_with);
    }

    #[test]
    fn json_artifact_is_wellformed() {
        let g = GateResult {
            tally_ns: 1.5,
            event_ns: 40.0,
            tally_fraction: 0.0375,
            ncpus: 8,
            busy_with: 1.0e9,
            busy_without: 0.997e9,
            throughput_with: 5.0e5,
            throughput_without: 5.01e5,
            overhead: 0.003,
            threshold: MAX_OVERHEAD,
            pass: true,
        };
        let s = to_json(&g);
        assert!(s.contains("\"pass\": true"));
        assert!(s.contains("\"overhead_fraction\": 0.003000"));
        // Balanced braces / trailing newline — keeps the artifact parseable
        // by strict JSON readers.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(s.ends_with("}\n"));
    }
}
