//! E23: the adaptive-sampling overhead gate.
//!
//! The adaptive control plane (`ktrace-adapt`) hangs a per-major sampling
//! gate off the hot logging path: after the mask check, every admitted
//! event asks [`SampleGate::admit`]. At the default rate of 1 — the state
//! every tracer sits in until a detector actually fires — that question
//! must be one relaxed load and a compare, or the control plane would tax
//! exactly the healthy steady state it exists to protect. The gate asserts
//! the paper's economics survive: sampling at rate 1 adds **less than 1%**
//! to the Fig. 3-style SDET cost.
//!
//! Method (measured + modelled, exactly like E20):
//!
//! 1. *Measure* the per-event cost of `SampleGate::admit` at rate 1 in
//!    isolation on this host (floor-subtracted), and the full per-event
//!    logging cost (E2's fit, which already *includes* the gate since it is
//!    compiled in). Their ratio is the gate's share of the event cost.
//! 2. *Model* the SDET run on the virtual-time multiprocessor twice with
//!    paper-anchored costs: per-event cost as shipped vs. per-event cost
//!    with the gate share stripped out.
//! 3. Gate on the added busy-work fraction.

use crate::event_cost;
use crate::sdet_fig3::{busy, run_point};
use crate::util::time_per_call;
use ktrace_analysis::table::{Align, TextTable};
use ktrace_core::SampleGate;
use ktrace_format::MajorId;
use ktrace_vsim::{CostParams, Scheme};
use std::fmt::Write as _;

/// The gate: rate-1 sampling may add at most this fraction of SDET busy
/// work.
pub const MAX_OVERHEAD: f64 = 0.01;

/// Everything the gate measured and decided, for the report and the
/// `BENCH_adapt.json` artifact.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Measured cost (ns) of `SampleGate::admit` at rate 1, in isolation.
    pub admit_ns: f64,
    /// Measured full per-event logging cost (ns), gate included.
    pub event_ns: f64,
    /// The gate's share of the per-event cost.
    pub admit_fraction: f64,
    /// Modelled CPUs of the SDET point.
    pub ncpus: usize,
    /// Modelled SDET busy work (ns) with the gate compiled in.
    pub busy_with: f64,
    /// Modelled SDET busy work (ns) with the gate share stripped.
    pub busy_without: f64,
    /// Modelled throughput (scripts/hour) with the gate.
    pub throughput_with: f64,
    /// Modelled throughput (scripts/hour) without the gate.
    pub throughput_without: f64,
    /// Added busy-work fraction: `(with - without) / without`.
    pub overhead: f64,
    /// The gate threshold ([`MAX_OVERHEAD`]).
    pub threshold: f64,
    /// Did the gate pass?
    pub pass: bool,
}

/// Runs the measurement and the model, returning the gate verdict.
pub fn measure(fast: bool) -> GateResult {
    let iters = if fast { 200_000 } else { 2_000_000 };

    // 1a. The work rate-1 sampling adds to a mask-admitted event: one
    // relaxed load of the major's rate plus the `<= 1` early return. The
    // major alternates to defeat a single hot cache line staying in a
    // register, which is pessimistic for the gate.
    let gate = SampleGate::new();
    let majors = [MajorId::MEM, MajorId::SCHED];
    let mut i = 0usize;
    let raw_ns = time_per_call(iters, || {
        std::hint::black_box(gate.admit(std::hint::black_box(majors[i & 1])));
        i = i.wrapping_add(1);
    });
    let floor_ns = time_per_call(iters, || {
        std::hint::black_box(std::hint::black_box(7u64).wrapping_add(1));
    });
    let admit_ns = (raw_ns - floor_ns).max(0.01);

    // 1b. The full per-event cost, gate included (it is compiled in).
    let costs = event_cost::measure(fast);
    let event_ns = costs.base_ns.max(1.0);
    let admit_fraction = (admit_ns / event_ns).min(1.0);

    // 2. Model the SDET point twice. Paper-anchored per-event cost, with
    // the measured gate share stripped for the "without" run.
    let with = CostParams::default();
    let without = CostParams {
        per_event_ns: with.per_event_ns * (1.0 - admit_fraction),
        ..with
    };
    let ncpus = 8;
    let scripts_per_cpu = if fast { 4 } else { 8 };
    let on_with = run_point(ncpus, Scheme::LocklessPerCpu, with, scripts_per_cpu);
    let on_without = run_point(ncpus, Scheme::LocklessPerCpu, without, scripts_per_cpu);

    let busy_with = busy(&on_with);
    let busy_without = busy(&on_without);
    let overhead = (busy_with - busy_without) / busy_without;
    GateResult {
        admit_ns,
        event_ns,
        admit_fraction,
        ncpus,
        busy_with,
        busy_without,
        throughput_with: on_with.throughput_per_hour(),
        throughput_without: on_without.throughput_per_hour(),
        overhead,
        threshold: MAX_OVERHEAD,
        pass: overhead < MAX_OVERHEAD,
    }
}

/// Renders the gate result as the `BENCH_adapt.json` artifact.
pub fn to_json(g: &GateResult) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E23 adaptive-sampling overhead gate\",\n",
            "  \"admit_ns\": {:.4},\n",
            "  \"event_ns\": {:.4},\n",
            "  \"admit_fraction\": {:.6},\n",
            "  \"ncpus\": {},\n",
            "  \"busy_with_ns\": {:.0},\n",
            "  \"busy_without_ns\": {:.0},\n",
            "  \"throughput_with_per_hour\": {:.2},\n",
            "  \"throughput_without_per_hour\": {:.2},\n",
            "  \"overhead_fraction\": {:.6},\n",
            "  \"threshold\": {:.6},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        g.admit_ns,
        g.event_ns,
        g.admit_fraction,
        g.ncpus,
        g.busy_with,
        g.busy_without,
        g.throughput_with,
        g.throughput_without,
        g.overhead,
        g.threshold,
        g.pass
    )
}

/// Renders the E23 report.
pub fn report(fast: bool) -> String {
    render(&measure(fast))
}

/// Renders an already-measured gate result.
pub fn render(g: &GateResult) -> String {
    let mut out =
        String::from("Adaptive sampling-gate overhead (measured share, modelled SDET):\n");
    let mut t = TextTable::new(&[("quantity", Align::Left), ("value", Align::Right)]);
    t.row(vec![
        "per-event admit() cost at rate 1".into(),
        format!("{:.2} ns", g.admit_ns),
    ]);
    t.row(vec![
        "per-event logging cost (incl. gate)".into(),
        format!("{:.2} ns", g.event_ns),
    ]);
    t.row(vec![
        "gate share of event cost".into(),
        format!("{:.2}%", 100.0 * g.admit_fraction),
    ]);
    t.row(vec![
        format!("SDET busy work @{} cpus, with gate", g.ncpus),
        format!("{:.3e} ns", g.busy_with),
    ]);
    t.row(vec![
        "SDET busy work, gate stripped".into(),
        format!("{:.3e} ns", g.busy_without),
    ]);
    t.row(vec![
        "added busy work".into(),
        format!("{:+.3}%", 100.0 * g.overhead),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\ngate: sampling overhead {:.3}% < {:.0}% — {}",
        100.0 * g.overhead,
        100.0 * g.threshold,
        if g.pass { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_overhead_under_one_percent() {
        let g = measure(true);
        // Same calibration caveat as E20: a debug build inflates the
        // isolated admit() measurement far more than the (partly
        // memory-bound) full event path, so the measured *share* doesn't
        // transfer. The hard 1% gate binds in release builds — the
        // configuration CI's adapt job runs via `fig_adapt_gate`; debug
        // gets a loosened sanity ceiling.
        let ceiling = if cfg!(debug_assertions) {
            0.05
        } else {
            g.threshold
        };
        assert!(
            g.overhead < ceiling,
            "rate-1 sampling adds {:.3}% to SDET busy work (gate {:.1}%); admit {:.2} ns of {:.2} ns/event",
            100.0 * g.overhead,
            100.0 * ceiling,
            g.admit_ns,
            g.event_ns
        );
        // Sanity: real, nonzero costs, and the "without" model is
        // genuinely cheaper (the share was actually stripped).
        assert!(g.admit_ns > 0.0 && g.event_ns > g.admit_ns);
        assert!(g.busy_with >= g.busy_without);
        assert!(g.throughput_without >= g.throughput_with);
    }

    #[test]
    fn json_artifact_is_wellformed() {
        let g = GateResult {
            admit_ns: 0.8,
            event_ns: 40.0,
            admit_fraction: 0.02,
            ncpus: 8,
            busy_with: 1.0e9,
            busy_without: 0.998e9,
            throughput_with: 5.0e5,
            throughput_without: 5.01e5,
            overhead: 0.002,
            threshold: MAX_OVERHEAD,
            pass: true,
        };
        let s = to_json(&g);
        assert!(s.contains("\"pass\": true"));
        assert!(s.contains("\"overhead_fraction\": 0.002000"));
        // Balanced braces / trailing newline — keeps the artifact
        // parseable by strict JSON readers.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(s.ends_with("}\n"));
    }
}
