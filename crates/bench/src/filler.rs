//! E6 + E12: the space economics of variable-length events.
//!
//! E6 (§3.2): "We have found empirically that 30 to 40 percent of events end
//! exactly on a buffer boundary and because there are very few events larger
//! than 4 64-bit words, this alignment in practice wastes very little
//! space." Here: log a realistic event-size mix through the real logger and
//! measure filler waste per buffer size, plus how often a buffer closes with
//! no filler at all.
//!
//! E12 (§2): fixed-length events "waste space… take longer to write… and
//! make it complicated to log data that is larger than the fixed size".
//! Here: bytes consumed per event, variable vs fixed-slot, on the same mix.

use ktrace_analysis::table::{Align, TextTable};
use ktrace_baselines::{EventSink, FixedSlotSink};
use ktrace_clock::SyncClock;
use ktrace_core::{parse_buffer, Mode, TraceConfig, TraceLogger};
use ktrace_format::MajorId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;

/// The payload-word mix: mostly small events, rarely large — the paper's
/// observed distribution ("very few events larger than 4 64-bit words").
pub fn payload_mix(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100) {
        0..=34 => 1,
        35..=59 => 2,
        60..=79 => 3,
        80..=92 => 4,
        93..=97 => 6,
        _ => 12,
    }
}

/// Filler statistics for one buffer geometry.
#[derive(Debug, Clone)]
pub struct FillerStats {
    /// Words per buffer.
    pub buffer_words: usize,
    /// Buffers measured.
    pub buffers: usize,
    /// Fraction of all words spent on filler events.
    pub filler_fraction: f64,
    /// Fraction spent on per-buffer time anchors.
    pub anchor_fraction: f64,
    /// Fraction of buffers that closed with zero filler (an event ended
    /// exactly on the boundary).
    pub exact_end_fraction: f64,
}

/// Measures filler waste for one buffer size.
pub fn measure_filler(buffer_words: usize, events: usize, seed: u64) -> FillerStats {
    let config = TraceConfig {
        buffer_words,
        buffers_per_cpu: 4,
        mode: Mode::Stream,
    };
    let logger = TraceLogger::builder()
        .geometry(config)
        .clock(Arc::new(SyncClock::new()))
        .ncpus(1)
        .build()
        .expect("valid config");
    let handle = logger.handle(0).expect("cpu 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let payload = [0x77u64; 16];

    let mut buffers = 0usize;
    let mut filler_words = 0usize;
    let mut anchor_words = 0usize;
    let mut exact = 0usize;
    let mut total_words = 0usize;

    for _ in 0..events {
        let words = payload_mix(&mut rng);
        assert!(handle.log_slice(MajorId::TEST, 1, &payload[..words]));
        while let Some(buf) = logger.take_buffer(0) {
            let parsed = parse_buffer(0, buf.seq, &buf.words, None);
            buffers += 1;
            total_words += buf.words.len();
            filler_words += parsed.filler_words;
            anchor_words += parsed
                .events
                .iter()
                .filter(|e| e.is_control() && !e.is_filler())
                .map(|e| e.len_words())
                .sum::<usize>();
            if parsed.filler_words == 0 {
                exact += 1;
            }
        }
    }

    FillerStats {
        buffer_words,
        buffers,
        filler_fraction: filler_words as f64 / total_words.max(1) as f64,
        anchor_fraction: anchor_words as f64 / total_words.max(1) as f64,
        exact_end_fraction: exact as f64 / buffers.max(1) as f64,
    }
}

/// E6 report.
pub fn report_filler(fast: bool) -> String {
    let events = if fast { 60_000 } else { 600_000 };
    let mut t = TextTable::new(&[
        ("buffer", Align::Right),
        ("buffers seen", Align::Right),
        ("filler waste", Align::Right),
        ("anchor waste", Align::Right),
        ("exact-end buffers", Align::Right),
    ]);
    for buffer_words in [128usize, 512, 2048, 16 * 1024] {
        let s = measure_filler(buffer_words, events, 42);
        t.row(vec![
            format!("{} KiB", buffer_words * 8 / 1024),
            s.buffers.to_string(),
            format!("{:.2}%", 100.0 * s.filler_fraction),
            format!("{:.2}%", 100.0 * s.anchor_fraction),
            format!("{:.0}%", 100.0 * s.exact_end_fraction),
        ]);
    }
    let mut out = String::from("Filler overhead vs buffer (alignment-boundary) size:\n");
    out.push_str(&t.render());
    out.push_str(
        "\npaper §3.2: \"30 to 40 percent of events end exactly on a buffer boundary… this \
         alignment in practice wastes very little space\"\n",
    );
    out
}

/// E12 report: variable vs fixed-slot space per event.
pub fn report_var_vs_fixed(fast: bool) -> String {
    let events = if fast { 50_000 } else { 500_000 };
    let mut rng = StdRng::seed_from_u64(7);
    let sizes: Vec<usize> = (0..events).map(|_| payload_mix(&mut rng)).collect();

    // Variable length: header + payload, plus measured filler/anchor waste.
    let filler = measure_filler(2048, events, 7);
    let avg_payload = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    let var_words = (1.0 + avg_payload) / (1.0 - filler.filler_fraction - filler.anchor_fraction);

    // Fixed slots must fit the largest event: 12 payload words + header,
    // plus the valid word.
    let clock = Arc::new(SyncClock::new());
    let fixed = FixedSlotSink::new(clock, 1, 13, 4096);
    let payload = [0u64; 16];
    for &s in &sizes {
        fixed.log(0, MajorId::TEST, 1, &payload[..s]);
    }
    let fixed_words = fixed.words_per_event() as f64;

    // A smaller slot wastes less but truncates.
    let small = FixedSlotSink::new(Arc::new(SyncClock::new()), 1, 5, 4096);
    for &s in &sizes {
        small.log(0, MajorId::TEST, 1, &payload[..s]);
    }

    let mut out = String::from("Space per event (same event mix):\n");
    let mut t = TextTable::new(&[
        ("scheme", Align::Left),
        ("words/event", Align::Right),
        ("bytes/event", Align::Right),
        ("truncated", Align::Right),
    ]);
    t.row(vec![
        "variable-length (incl. filler+anchor)".into(),
        format!("{var_words:.2}"),
        format!("{:.1}", var_words * 8.0),
        "0".into(),
    ]);
    t.row(vec![
        "fixed slot sized for max event".into(),
        format!("{fixed_words:.2}"),
        format!("{:.1}", fixed_words * 8.0),
        fixed.truncated().to_string(),
    ]);
    t.row(vec![
        "fixed slot sized for typical event".into(),
        format!("{:.2}", small.words_per_event() as f64),
        format!("{:.1}", small.words_per_event() as f64 * 8.0),
        small.truncated().to_string(),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nvariable-length saves {:.0}% space vs max-sized fixed slots with zero truncation",
        100.0 * (1.0 - var_words / fixed_words)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filler_waste_small_for_paper_geometry() {
        let s = measure_filler(16 * 1024, 60_000, 1);
        assert!(s.buffers >= 4, "need several buffers, got {}", s.buffers);
        // "wastes very little space": under 2% at 128 KiB buffers.
        assert!(s.filler_fraction < 0.02, "filler {:.3}", s.filler_fraction);
        assert!(s.anchor_fraction < 0.01);
    }

    #[test]
    fn smaller_buffers_waste_more() {
        let small = measure_filler(128, 40_000, 2);
        let large = measure_filler(4096, 40_000, 2);
        assert!(small.filler_fraction > large.filler_fraction);
    }

    #[test]
    fn some_buffers_end_exactly_on_boundary() {
        let s = measure_filler(512, 80_000, 3);
        // The paper saw 30–40%; any clearly-nonzero rate confirms the
        // mechanism (the rate depends on the size mix).
        assert!(
            s.exact_end_fraction > 0.02,
            "exact-end {:.3}",
            s.exact_end_fraction
        );
    }

    #[test]
    fn variable_beats_fixed_on_space() {
        let report = report_var_vs_fixed(true);
        assert!(report.contains("saves"), "{report}");
        // Parse the saving percentage out of the report's final line.
        let line = report.lines().find(|l| l.contains("saves")).unwrap();
        let pct: f64 = line
            .split("saves ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(pct > 30.0, "saving {pct}%");
    }
}
