//! Shared harness helpers.

use ktrace_clock::SyncClock;
use ktrace_core::{TraceConfig, TraceLogger};
use std::sync::Arc;
use std::time::Instant;

/// Is the `KTRACE_BENCH_FULL` environment variable set? (Harness binaries
/// default to fast runs; set it for longer, lower-variance measurements.)
pub fn full_requested() -> bool {
    std::env::var_os("KTRACE_BENCH_FULL").is_some()
}

/// A flight-recorder logger suitable for hot-loop measurement (never blocks
/// on a consumer).
pub fn bench_logger(ncpus: usize) -> TraceLogger {
    TraceLogger::builder()
        .geometry(
            TraceConfig {
                buffer_words: 16 * 1024,
                buffers_per_cpu: 8,
                ..TraceConfig::default()
            }
            .flight_recorder(),
        )
        .clock(Arc::new(SyncClock::new()))
        .ncpus(ncpus)
        .build()
        .expect("valid bench config")
}

/// Times `iters` executions of `f`, returning mean nanoseconds per call.
pub fn time_per_call(iters: u64, mut f: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..(iters / 10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Least-squares slope/intercept of `points` (x, y).
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in points {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (slope, intercept) = linear_fit(&pts);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
    }

    #[test]
    fn time_per_call_returns_positive() {
        let ns = time_per_call(1000, || {
            std::hint::black_box(42u64.wrapping_mul(3));
        });
        assert!(ns >= 0.0);
    }
}
