//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each module implements one (or a related group of) experiment(s) from the
//! index in `DESIGN.md` and returns its report as a string; the `src/bin/`
//! binaries are thin wrappers. `run_all` executes everything and is what
//! produced `EXPERIMENTS.md`'s measured values.
//!
//! Experiments come in two kinds, reflecting the single-core host this
//! reproduction runs on (see DESIGN.md):
//!
//! * **measured** — real code on real hardware: per-event logging cost (E2),
//!   the mask-gate cost (E3), filler waste (E6), variable-vs-fixed space
//!   (E12), garble detection (E14), TSC interpolation error (E13);
//! * **modelled** — the virtual-time multiprocessor with cost models
//!   calibrated from the measured numbers: SDET scaling (E1, Fig. 3),
//!   lockless-vs-locking (E4), per-CPU-vs-global buffers (E5), and the
//!   tool figures (Figs. 4–8) generated from emitted "8-way" traces.

pub mod adapt_gate;
pub mod event_cost;
pub mod filler;
pub mod garble;
pub mod schemes;
pub mod sdet_fig3;
pub mod telemetry_gate;
pub mod tools;
pub mod tsc;
pub mod util;

/// Runs every experiment and returns `(experiment id, report)` pairs in
/// paper order. `fast` trims iteration counts for CI-speed runs.
pub fn run_all(fast: bool) -> Vec<(&'static str, String)> {
    vec![
        ("E1/Fig3 SDET throughput scaling", sdet_fig3::report(fast)),
        (
            "E2+E3 per-event cost and mask gate",
            event_cost::report(fast),
        ),
        (
            "E4 lockless vs locking (order of magnitude)",
            schemes::report_lockless_vs_locking(fast),
        ),
        (
            "E5 per-CPU vs shared buffers",
            schemes::report_percpu_vs_global(fast),
        ),
        (
            "E6 filler waste and boundary alignment",
            filler::report_filler(fast),
        ),
        (
            "E12 variable vs fixed-length space",
            filler::report_var_vs_fixed(fast),
        ),
        ("E7/Fig7 lock contention analysis", tools::report_fig7(fast)),
        ("E8/Fig6 PC-sample profile", tools::report_fig6(fast)),
        ("E9/Fig8 fine-grained breakdown", tools::report_fig8(fast)),
        (
            "E10/Fig5 event listing + random access",
            tools::report_fig5(fast),
        ),
        ("E11/Fig4 timeline", tools::report_fig4(fast)),
        ("E13 TSC interpolation error", tsc::report(fast)),
        (
            "E17 timestamp-re-read ablation",
            schemes::report_stale_ablation(fast),
        ),
        ("E14 garble detection", garble::report(fast)),
        ("E20 telemetry overhead gate", telemetry_gate::report(fast)),
        (
            "E23 adaptive-sampling overhead gate",
            adapt_gate::report(fast),
        ),
    ]
}
