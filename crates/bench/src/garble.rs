//! E14: detecting garbled buffers and dropped events (§3.1).
//!
//! The paper's claims under test: (1) per-buffer counts detect both "not
//! enough data" (a killed/blocked logger) and the drain-time mismatch; (2)
//! "with high probability (it is unlikely that random data will have the
//! correct format of a trace event header) errors can be detected by the
//! post-processing tools"; (3) consumer overrun drops events but the count
//! is recorded in-stream.

use ktrace_analysis::table::{Align, TextTable};
use ktrace_clock::SyncClock;
use ktrace_core::{Mode, TraceConfig, TraceLogger};
use ktrace_format::ids::control;
use ktrace_format::EventRegistry;
use ktrace_format::MajorId;
use ktrace_io::{FileHeader, TraceFileReader, TraceFileWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::io::Cursor;
use std::sync::Arc;

/// Part 1: overrun accounting — attempted = logged + dropped, with the drop
/// count recoverable from in-stream markers.
pub fn overrun_accounting(attempts: u64) -> (u64, u64, u64) {
    let config = TraceConfig {
        buffer_words: 128,
        buffers_per_cpu: 2,
        mode: Mode::Stream,
    };
    let logger = TraceLogger::builder()
        .geometry(config)
        .clock(Arc::new(SyncClock::new()))
        .ncpus(1)
        .build()
        .expect("logger");
    let handle = logger.handle(0).expect("cpu 0");
    let mut logged = 0u64;
    let mut marked = 0u64;
    let mut count_markers = |b: &ktrace_core::CompletedBuffer| {
        for e in ktrace_core::parse_buffer(0, b.seq, &b.words, None).events {
            if e.major == MajorId::CONTROL && e.minor == control::DROPPED {
                marked += e.payload.first().copied().unwrap_or(0);
            }
        }
    };
    for i in 0..attempts {
        if handle.log2(MajorId::TEST, 1, i, i) {
            logged += 1;
        }
        // A slow consumer: takes one buffer only every 48 attempts.
        if i % 48 == 0 {
            if let Some(b) = logger.take_buffer(0) {
                count_markers(&b);
            }
        }
    }
    // Drain everything and count the remaining markers.
    for bufs in logger.drain_all() {
        for b in bufs {
            count_markers(&b);
        }
    }
    (logged, marked, logger.stats().dropped_pending)
}

/// Part 2: corruption-detection rate. Returns (records corrupted, records
/// detected).
pub fn corruption_detection(records_to_corrupt: usize, seed: u64) -> (usize, usize) {
    // Build a clean in-memory trace file.
    let config = TraceConfig::small();
    let logger = TraceLogger::builder()
        .geometry(config)
        .clock(Arc::new(SyncClock::new()))
        .ncpus(1)
        .build()
        .expect("logger");
    let handle = logger.handle(0).expect("cpu 0");
    let header = FileHeader {
        ncpus: 1,
        buffer_words: config.buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: EventRegistry::with_builtin(),
    };
    let mut writer = TraceFileWriter::new(Vec::new(), &header).expect("writer");
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..20_000u64 {
        handle.log_slice(MajorId::TEST, 1, &[i; 3][..rng.gen_range(0..4)]);
        while let Some(b) = logger.take_buffer(0) {
            writer.write_buffer(&b).expect("write");
        }
    }
    for bufs in logger.drain_all() {
        for b in bufs {
            writer.write_buffer(&b).expect("write");
        }
    }
    let mut bytes = writer.finish().expect("finish");

    // Corrupt one event *header* per chosen record — the paper's scenario is
    // a logger killed between reservation and header write, which leaves a
    // zero header; we also try random garbage where a header should be.
    let (hdr, hdr_len) = FileHeader::decode(&bytes).expect("header");
    let record_size = hdr.record_size();
    let records = (bytes.len() - hdr_len) / record_size;
    let mut chosen: Vec<usize> = (0..records).collect();
    for i in (1..chosen.len()).rev() {
        chosen.swap(i, rng.gen_range(0..=i));
    }
    chosen.truncate(records_to_corrupt.min(records));
    {
        let mut reader = TraceFileReader::new(Cursor::new(bytes.clone())).expect("reader");
        for (n, &rec) in chosen.iter().enumerate() {
            // Find the record's event header offsets and hit a random one
            // past the anchor.
            let (_, events, _) = reader.parse_record(rec).expect("parse");
            let victims: Vec<usize> = events.iter().skip(1).map(|e| e.offset).collect();
            let word = victims[rng.gen_range(0..victims.len())];
            let at = hdr_len + rec * record_size + ktrace_io::file::RECORD_HEADER_BYTES + word * 8;
            let value: u64 = if n % 2 == 0 { 0 } else { rng.gen() };
            bytes[at..at + 8].copy_from_slice(&value.to_le_bytes());
        }
    }

    let mut reader = TraceFileReader::new(Cursor::new(bytes)).expect("reader");
    let anomalies = reader.anomalies().expect("scan");
    let detected = chosen
        .iter()
        .filter(|&&rec| anomalies.iter().any(|a| a.record == rec))
        .count();
    (chosen.len(), detected)
}

/// E14 report.
pub fn report(fast: bool) -> String {
    let attempts = if fast { 20_000 } else { 200_000 };
    let (logged, marked, pending) = overrun_accounting(attempts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "overrun accounting: {attempts} attempts = {logged} logged + {marked} marked dropped \
         + {pending} pending  (exact: {})",
        logged + marked + pending == attempts
    );

    let mut t = TextTable::new(&[
        ("corrupted records", Align::Right),
        ("detected", Align::Right),
        ("rate", Align::Right),
    ]);
    let mut total = (0usize, 0usize);
    for seed in 0..if fast { 3 } else { 10 } {
        let (corrupted, detected) = corruption_detection(8, seed);
        total.0 += corrupted;
        total.1 += detected;
        t.row(vec![
            corrupted.to_string(),
            detected.to_string(),
            format!("{:.0}%", 100.0 * detected as f64 / corrupted.max(1) as f64),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\noverall detection rate {:.0}% (paper: \"with high probability… errors can be \
         detected by the post-processing tools\"; a flipped word that lands in event \
         *payload* changes data, not structure, and is legitimately invisible)",
        100.0 * total.1 as f64 / total.0.max(1) as f64
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrun_accounting_is_exact() {
        let attempts = 10_000;
        let (logged, marked, pending) = overrun_accounting(attempts);
        assert!(logged > 0 && marked > 0, "logged {logged} marked {marked}");
        assert_eq!(logged + marked + pending, attempts);
    }

    #[test]
    fn most_corruptions_detected() {
        let (corrupted, detected) = corruption_detection(10, 123);
        assert_eq!(corrupted, 10);
        assert!(detected >= 6, "only {detected}/10 detected");
    }

    #[test]
    fn report_renders() {
        let s = report(true);
        assert!(s.contains("overrun accounting"));
        assert!(s.contains("detection rate"));
    }
}
