//! Criterion: decode-side throughput — buffer parsing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ktrace_bench::util::bench_logger;
use ktrace_core::parse_buffer;
use ktrace_format::MajorId;
use std::hint::black_box;

fn bench_reader(c: &mut Criterion) {
    // Produce one full, realistic buffer.
    let logger = bench_logger(1);
    let handle = logger.handle(0).expect("cpu 0");
    let payload = [9u64; 4];
    for i in 0..100_000u64 {
        handle.log_slice(MajorId::TEST, 1, &payload[..(i % 5) as usize]);
    }
    let snap = logger.snapshot(0);
    let seq = snap.current_seq().saturating_sub(1);
    let words = snap.buffer(seq).expect("full buffer").to_vec();
    let events = parse_buffer(0, seq, &words, None).events.len();

    let mut group = c.benchmark_group("parse_buffer");
    group.throughput(Throughput::Elements(events as u64));
    group.bench_function("128KiB_buffer", |b| {
        b.iter(|| black_box(parse_buffer(0, seq, black_box(&words), None)));
    });
    group.finish();
}

criterion_group!(benches, bench_reader);
criterion_main!(benches);
