//! Criterion: one 2-word event through each logging scheme (E4/E5 measured
//! half).

use criterion::{criterion_group, criterion_main, Criterion};
use ktrace_baselines::{
    EventSink, FixedSlotSink, GlobalCasSink, LockingSink, LocklessSink, SyscallSink,
};
use ktrace_bench::util::bench_logger;
use ktrace_clock::SyncClock;
use ktrace_core::TraceConfig;
use ktrace_format::MajorId;
use std::hint::black_box;
use std::sync::Arc;

fn bench_sinks(c: &mut Criterion) {
    let clock = Arc::new(SyncClock::new());
    let sinks: Vec<Box<dyn EventSink>> = vec![
        Box::new(LocklessSink::new(bench_logger(1))),
        Box::new(GlobalCasSink::new(TraceConfig::default(), clock.clone())),
        Box::new(LockingSink::new(clock.clone(), 1 << 16, 0)),
        Box::new(FixedSlotSink::new(clock.clone(), 1, 8, 4096)),
        Box::new(SyscallSink::new(LocklessSink::new(bench_logger(1)), 400)),
    ];
    let payload = [1u64, 2];
    let mut group = c.benchmark_group("sinks");
    for sink in &sinks {
        group.bench_function(sink.name(), |b| {
            b.iter(|| black_box(sink.log(0, MajorId::TEST, 1, black_box(&payload))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sinks);
criterion_main!(benches);
