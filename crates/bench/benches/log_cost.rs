//! Criterion: per-event logging cost vs payload size (E2's hot loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktrace_bench::util::bench_logger;
use ktrace_format::MajorId;
use std::hint::black_box;

fn bench_log(c: &mut Criterion) {
    let logger = bench_logger(1);
    let handle = logger.handle(0).expect("cpu 0");
    let payload = [0x55u64; 8];
    let mut group = c.benchmark_group("log_event");
    for words in [0usize, 1, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &w| {
            b.iter(|| black_box(handle.log_slice(MajorId::TEST, 1, black_box(&payload[..w]))));
        });
    }
    group.finish();

    // The arity fast paths.
    let mut group = c.benchmark_group("log_arity");
    group.bench_function("log0", |b| {
        b.iter(|| black_box(handle.log0(MajorId::TEST, 1)))
    });
    group.bench_function("log1", |b| {
        b.iter(|| black_box(handle.log1(MajorId::TEST, 1, black_box(7))))
    });
    group.bench_function("log4", |b| {
        b.iter(|| black_box(handle.log4(MajorId::TEST, 1, 1, 2, 3, black_box(4))))
    });
    group.finish();
}

criterion_group!(benches, bench_log);
criterion_main!(benches);
