//! Criterion: the disabled-major check (E3 — the paper's "4 instructions").

use criterion::{criterion_group, criterion_main, Criterion};
use ktrace_bench::util::bench_logger;
use ktrace_events::exception;
use ktrace_format::MajorId;
use std::hint::black_box;

fn bench_mask(c: &mut Criterion) {
    let logger = bench_logger(1);
    logger.mask().disable(MajorId::EXCEPTION);
    let handle = logger.handle(0).expect("cpu 0");

    c.bench_function("disabled_log_attempt", |b| {
        b.iter(|| black_box(handle.log1(MajorId::EXCEPTION, exception::PPC_CALL, black_box(7))));
    });
    c.bench_function("mask_check_only", |b| {
        b.iter(|| black_box(handle.mask().is_enabled(black_box(MajorId::EXCEPTION))));
    });
    c.bench_function("enabled_log_for_comparison", |b| {
        b.iter(|| black_box(handle.log1(MajorId::TEST, 1, black_box(7))));
    });
}

criterion_group!(benches, bench_mask);
criterion_main!(benches);
