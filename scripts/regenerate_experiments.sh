#!/usr/bin/env sh
# Regenerates every paper figure/table and refreshes the artifacts under
# target/experiments/. EXPERIMENTS.md's measured values come from this run.
set -e
mkdir -p target/experiments
KTRACE_BENCH_FULL=1 cargo run --release -p ktrace-bench --bin run_all \
    | tee target/experiments/run_all_full.txt
echo "artifacts in target/experiments/"
