//! Integration: the `ktrace-verify` CLI over real trace files — zero exit on
//! a clean simulator trace, distinct nonzero exits per corruption, and the
//! race detector's verdicts on the racy / lock-disciplined counter twins.

use ktrace::ossim::workload::micro;
use ktrace::ossim::{KTracer, Machine, MachineConfig};
use ktrace::prelude::*;
use ktrace::verify::ViolationKind;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

fn make_trace(path: &Path, workload: ktrace::ossim::Workload) {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::default())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .unwrap();
    ktrace::events::register_all(&logger);
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .create(path)
        .unwrap();
    let machine = Machine::new(MachineConfig::fast_test(2), Arc::new(KTracer::new(logger)));
    machine.run(workload);
    assert!(session.finish().lossless());
}

fn verify(args: &[&str]) -> (String, Option<i32>) {
    let exe = env!("CARGO_BIN_EXE_ktrace-verify");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("run ktrace-verify");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code(),
    )
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ktrace-verify-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn lint_is_clean_on_simulator_trace_and_flags_corruptions() {
    let dir = temp_dir();
    let clean = dir.join("clean.ktrace");
    make_trace(&clean, micro::locked_counter(3, 8));

    let (out, code) = verify(&["lint", clean.to_str().unwrap()]);
    assert_eq!(code, Some(0), "clean trace must lint clean:\n{out}");
    assert!(out.contains("0 violation"), "{out}");

    let (out, code) = verify(&["all", clean.to_str().unwrap()]);
    assert_eq!(
        code,
        Some(0),
        "lock-disciplined trace must pass both passes:\n{out}"
    );

    // Truncate mid-record: distinct truncated-buffer exit code.
    let bytes = std::fs::read(&clean).unwrap();
    let cut = dir.join("truncated.ktrace");
    std::fs::write(&cut, &bytes[..bytes.len() - 5]).unwrap();
    let (_, code) = verify(&["lint", cut.to_str().unwrap()]);
    assert_eq!(
        code,
        Some(ViolationKind::TruncatedBuffer.exit_code() as i32)
    );

    // Zero an event header early in the first record: garbled commit.
    let mut garbled = bytes.clone();
    let n = garbled.len();
    // Zero 8 aligned bytes well inside the first record's data area.
    let (_, hdr_len) = ktrace::io::file::FileHeader::decode(&garbled).unwrap();
    let word0 = hdr_len + ktrace::io::file::RECORD_HEADER_BYTES + 3 * 8;
    assert!(word0 + 8 < n);
    garbled[word0..word0 + 8].fill(0);
    let garbled_path = dir.join("garbled.ktrace");
    std::fs::write(&garbled_path, &garbled).unwrap();
    let (_, code) = verify(&["lint", garbled_path.to_str().unwrap()]);
    assert_eq!(code, Some(ViolationKind::GarbledCommit.exit_code() as i32));
}

#[test]
fn race_detector_flags_racy_and_passes_locked_traces() {
    let dir = temp_dir();
    let racy = dir.join("racy.ktrace");
    make_trace(&racy, micro::racy_counter(3, 12));
    let (out, code) = verify(&["races", racy.to_str().unwrap()]);
    assert_eq!(
        code,
        Some(ViolationKind::DataRace.exit_code() as i32),
        "racy counter must be flagged:\n{out}"
    );
    assert!(out.contains("data-race"), "{out}");

    let locked = dir.join("locked.ktrace");
    make_trace(&locked, micro::locked_counter(3, 12));
    let (out, code) = verify(&["races", locked.to_str().unwrap()]);
    assert_eq!(code, Some(0), "lock-disciplined counter must pass:\n{out}");
    assert!(out.contains("0 race"), "{out}");
}

#[test]
fn usage_errors_exit_2() {
    let (_, code) = verify(&[]);
    assert_eq!(code, Some(2));
    let (_, code) = verify(&["frobnicate", "x.ktrace"]);
    assert_eq!(code, Some(2));
}
