//! Golden-fixture snapshot for the Chrome/Perfetto trace export: a fixed
//! ossim run's `to_chrome_json` output must match the committed fixture
//! byte for byte, parse as JSON, and keep `traceEvents` timestamps
//! monotonic.
//!
//! Determinism is engineered the same way as the golden listing (see
//! `tests/golden_trace.rs`): one simulated CPU, no PC sampler, no
//! preemption, a [`ManualClock`], and a final hand-placed heartbeat whose
//! payload is counter state fully determined by the run.
//!
//! Regenerate after an intentional change to the event stream or to the
//! export mapping with: `KTRACE_BLESS=1 cargo test --test chrome_export`.

use ktrace::analysis::to_chrome_json;
use ktrace::ossim::workload::Workload;
use ktrace::ossim::{KTracer, Machine, MachineConfig, Op, ProcessSpec, Program};
use ktrace::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const FIXTURE: &str = "tests/fixtures/golden_chrome.json";

fn golden_chrome() -> String {
    let clock = Arc::new(ManualClock::new(1_000, 1));
    let logger = TraceLogger::builder()
        .geometry(TraceConfig {
            buffer_words: 4096,
            buffers_per_cpu: 16,
            ..TraceConfig::small()
        })
        .clock(clock)
        .ncpus(1)
        .build()
        .unwrap();
    ktrace::events::register_all(&logger);

    let mut config = MachineConfig::fast_test(1);
    config.pc_sample_period = None; // the sampler fires on wall time
    config.time_slice = Duration::from_secs(3600); // no preemption points
    let machine = Machine::new(config, Arc::new(KTracer::new(logger)));

    let program = Program::new()
        .compute(1_000, ktrace::events::func::USER_COMPUTE)
        .syscall(ktrace::events::sysno::GETPID)
        .malloc(128)
        .page_fault(0x7000)
        .syscall(ktrace::events::sysno::CLOSE)
        .op(Op::CountCompletion);
    let report = machine.run(Workload {
        processes: (0..3)
            .map(|i| ProcessSpec::new(format!("chrome{i}"), program.clone()))
            .collect(),
        user_locks: 0,
    });
    assert!(!report.aborted);
    assert_eq!(report.tasks_completed, 3);

    let logger = machine.tracer().logger();
    assert_eq!(logger.stats().dropped_pending, 0, "ring must be big enough");
    // One heartbeat at the end: its payload is the telemetry counter block,
    // fully determined by the run above, so the fixture stays byte-stable
    // and the export's counter-track mapping is exercised on a real beat.
    assert!(logger.log_heartbeat(0), "heartbeat must fit in the ring");

    let dir = std::env::temp_dir().join(format!("ktrace-chrome-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chrome.ktrace");
    let header = ktrace::io::FileHeader {
        ncpus: 1,
        buffer_words: logger.config().buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: logger.registry(),
    };
    let mut w = ktrace::io::TraceFileWriter::create(&path, &header).unwrap();
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    w.finish().unwrap();

    let trace = Trace::from_file(&path).unwrap();
    let json = to_chrome_json(&trace);
    std::fs::remove_dir_all(&dir).ok();
    json
}

/// Minimal structural JSON validation: every brace/bracket outside string
/// literals balances, and the document is a single object. Enough to
/// guarantee Perfetto's parser won't reject the file for syntax, without a
/// JSON library.
fn assert_parses_as_json(s: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut closed_root = false;
    for (i, c) in s.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth.push('}'),
            '[' => depth.push(']'),
            '}' | ']' => {
                assert_eq!(depth.pop(), Some(c), "mismatched close at byte {i}");
                if depth.is_empty() {
                    assert!(!closed_root, "trailing content after the root object");
                    closed_root = true;
                }
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string literal");
    assert!(depth.is_empty(), "unclosed braces/brackets: {depth:?}");
    assert!(closed_root && s.starts_with('{'), "root must be one object");
}

#[test]
fn chrome_export_matches_the_committed_fixture() {
    let json = golden_chrome();

    // The run itself must be reproducible before the fixture can be.
    let again = golden_chrome();
    assert_eq!(json, again, "two identical runs diverged");

    assert_parses_as_json(&json);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.contains("\"name\":\"cpu 0\""), "process metadata");
    assert!(
        json.contains("\"ph\":\"X\""),
        "thread slices from ctx switches"
    );
    // The heartbeat produced one counter track per metric.
    for name in ktrace::format::ids::control::HEARTBEAT_METRICS {
        assert!(
            json.contains(&format!("\"name\":\"ktrace {name}\"")),
            "missing counter track for {name}"
        );
    }
    // traceEvents timestamps are monotonic (the exporter sorts them; the
    // fixture pins that promise).
    let mut last = f64::MIN;
    for piece in json.split("\"ts\":").skip(1) {
        let num: f64 = piece.split(',').next().unwrap().parse().unwrap();
        assert!(num >= last, "ts went backwards: {num} < {last}");
        last = num;
    }

    if std::env::var("KTRACE_BLESS").is_ok() {
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(FIXTURE, &json).unwrap();
        eprintln!("golden fixture blessed: {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing: run with KTRACE_BLESS=1 to create it");
    assert_eq!(
        json, expected,
        "chrome export drifted from {FIXTURE}; if the change is \
         intentional, regenerate with KTRACE_BLESS=1"
    );
}
