//! Integration: the `ktrace-tools` CLI over a real trace file.

use ktrace::ossim::workload::sdet;
use ktrace::ossim::{KTracer, Machine, MachineConfig};
use ktrace::prelude::*;
use std::process::Command;
use std::sync::Arc;

fn make_trace(path: &std::path::Path) {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::default())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .unwrap();
    ktrace::events::register_all(&logger);
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .create(path)
        .unwrap();
    let machine = Machine::new(MachineConfig::fast_test(2), Arc::new(KTracer::new(logger)));
    machine.run(sdet::build(sdet::SdetConfig {
        scripts: 2,
        commands_per_script: 2,
        ..Default::default()
    }));
    assert!(session.finish().lossless());
}

fn tool(args: &[&str]) -> (String, bool) {
    let exe = env!("CARGO_BIN_EXE_ktrace-tools");
    let out = Command::new(exe).args(args).output().expect("run tool");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

fn tool_code(args: &[&str]) -> (String, i32) {
    let exe = env!("CARGO_BIN_EXE_ktrace-tools");
    let out = Command::new(exe).args(args).output().expect("run tool");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().expect("exit code"),
    )
}

#[test]
fn cli_subcommands_work_on_a_real_file() {
    let dir = std::env::temp_dir().join(format!("ktrace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cli.ktrace");
    make_trace(&path);
    let p = path.to_str().unwrap();

    let (listing, ok) = tool(&["list", p, "5"]);
    assert!(ok);
    assert_eq!(listing.lines().count(), 5);
    assert!(listing.contains("TRACE_"), "{listing}");

    let (locks, ok) = tool(&["lockstat", p, "3"]);
    assert!(ok);
    assert!(locks.contains("top 3 contended locks"), "{locks}");

    let (stats, ok) = tool(&["stats", p]);
    assert!(ok);
    assert!(stats.contains("events/sec"));

    let (tl, ok) = tool(&["timeline", p, "40"]);
    assert!(ok);
    assert!(tl.contains("cpu0"));
    assert!(tl.contains("legend:"));

    let (anomalies, ok) = tool(&["anomalies", p]);
    assert!(ok);
    assert!(anomalies.contains("0 record(s) anomalous"), "{anomalies}");

    let (csv, ok) = tool(&["export-csv", p]);
    assert!(ok);
    assert!(csv.starts_with("time_ns,cpu,"));
    assert!(csv.lines().count() > 10);

    let (dl, ok) = tool(&["deadlock", p]);
    assert!(ok);
    assert!(dl.contains("no deadlock cycle found"));

    let (_, ok) = tool(&["nonsense", p]);
    assert!(!ok, "unknown subcommand must fail");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_salvage_recovers_a_truncated_file() {
    let dir = std::env::temp_dir().join(format!("ktrace-cli-salvage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("whole.ktrace");
    make_trace(&path);
    let p = path.to_str().unwrap();

    // A clean file salvages with exit 0.
    let (out, code) = tool_code(&["salvage", p]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("salvage"), "{out}");

    // Cut the tail off: strict tools refuse it, salvage exits 10
    // (truncated-buffer) and a repaired copy loads strictly again.
    let bytes = std::fs::read(&path).unwrap();
    let cut = dir.join("cut.ktrace");
    std::fs::write(&cut, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();
    let cutp = cut.to_str().unwrap();
    let (_, ok) = tool(&["stats", cutp]);
    assert!(!ok, "the strict loader must refuse a truncated file");

    let fixed = dir.join("fixed.ktrace");
    let fixedp = fixed.to_str().unwrap();
    let (out, code) = tool_code(&["salvage", cutp, fixedp]);
    assert_eq!(code, 10, "truncated-buffer exit code expected: {out}");
    assert!(out.contains("truncated-buffer"), "{out}");
    assert!(out.contains("repaired file written"), "{out}");

    let (stats, ok) = tool(&["stats", fixedp]);
    assert!(ok, "the repaired file must load strictly: {stats}");

    std::fs::remove_dir_all(&dir).ok();
}
