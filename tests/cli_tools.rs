//! Integration: the `ktrace-tools` CLI over a real trace file.

use ktrace::ossim::workload::sdet;
use ktrace::ossim::{KTracer, Machine, MachineConfig};
use ktrace::prelude::*;
use std::process::Command;
use std::sync::Arc;

fn make_trace(path: &std::path::Path) {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::new(
        TraceConfig::default(),
        clock.clone() as Arc<dyn ClockSource>,
        2,
    )
    .unwrap();
    ktrace::events::register_all(&logger);
    let session = TraceSession::create(path, logger.clone(), clock.as_ref()).unwrap();
    let machine = Machine::new(MachineConfig::fast_test(2), Arc::new(KTracer::new(logger)));
    machine.run(sdet::build(sdet::SdetConfig {
        scripts: 2,
        commands_per_script: 2,
        ..Default::default()
    }));
    session.finish().unwrap();
}

fn tool(args: &[&str]) -> (String, bool) {
    let exe = env!("CARGO_BIN_EXE_ktrace-tools");
    let out = Command::new(exe).args(args).output().expect("run tool");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cli_subcommands_work_on_a_real_file() {
    let dir = std::env::temp_dir().join(format!("ktrace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cli.ktrace");
    make_trace(&path);
    let p = path.to_str().unwrap();

    let (listing, ok) = tool(&["list", p, "5"]);
    assert!(ok);
    assert_eq!(listing.lines().count(), 5);
    assert!(listing.contains("TRACE_"), "{listing}");

    let (locks, ok) = tool(&["lockstat", p, "3"]);
    assert!(ok);
    assert!(locks.contains("top 3 contended locks"), "{locks}");

    let (stats, ok) = tool(&["stats", p]);
    assert!(ok);
    assert!(stats.contains("events/sec"));

    let (tl, ok) = tool(&["timeline", p, "40"]);
    assert!(ok);
    assert!(tl.contains("cpu0"));
    assert!(tl.contains("legend:"));

    let (anomalies, ok) = tool(&["anomalies", p]);
    assert!(ok);
    assert!(anomalies.contains("0 record(s) anomalous"), "{anomalies}");

    let (csv, ok) = tool(&["export-csv", p]);
    assert!(ok);
    assert!(csv.starts_with("time_ns,cpu,"));
    assert!(csv.lines().count() > 10);

    let (dl, ok) = tool(&["deadlock", p]);
    assert!(ok);
    assert!(dl.contains("no deadlock cycle found"));

    let (_, ok) = tool(&["nonsense", p]);
    assert!(!ok, "unknown subcommand must fail");

    std::fs::remove_dir_all(&dir).ok();
}
