//! Integration: telemetry accounting reconciles with the ktrace-verify lint
//! over the drained file.
//!
//! The invariant under test, end to end:
//!
//! ```text
//! data events the lint counts in the file
//!     == snapshot events_logged − snapshot events_lost
//! ```
//!
//! exercised across a multi-writer run (several threads CAS-contending per
//! CPU region, heartbeats riding the stream) and faults-matrix-style sink
//! runs (transient errors ridden out, a sink that dies mid-session). Losses
//! on either side — producer overrun or drain-side drops — must be counted,
//! never silently absorbed.

use ktrace::faults::{FaultySink, SinkPlan};
use ktrace::io::SessionConfig;
use ktrace::prelude::*;
use ktrace::query::{parse_agg, StreamSource};
use ktrace::verify::{lint_file, Report};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// In-memory sink that survives being consumed by the session.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Accepts whole writes until `budget` bytes have landed, then fails every
/// write without consuming anything — so the captured stream always ends on
/// a record boundary (no torn tail to blur the accounting).
struct DyingAtBoundarySink {
    out: SharedBuf,
    budget: usize,
    accepted: usize,
}

impl Write for DyingAtBoundarySink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.accepted >= self.budget {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "sink died",
            ));
        }
        self.accepted += buf.len();
        self.out.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn register(logger: &TraceLogger) {
    logger.register_event(
        MajorId::TEST,
        1,
        EventDescriptor::new("TRACE_TEST_E2E", "64 64", "i %0[%d] x %1[%d]").unwrap(),
    );
}

/// Writes the captured stream to a temp file and returns the lint report.
fn lint_bytes(bytes: &[u8], tag: &str) -> Report {
    let dir = std::env::temp_dir().join(format!("ktrace-tel-e2e-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.ktrace");
    std::fs::write(&path, bytes).unwrap();
    let report = lint_file(&path).expect("captured stream must load");
    std::fs::remove_dir_all(&dir).ok();
    report
}

fn reconcile(report: &Report, stats: &ktrace::io::SessionStats, bytes: &[u8], tag: &str) {
    assert!(report.is_clean(), "{tag}: {}", report.render());
    assert_eq!(
        report.data_events_checked as u64,
        stats.events_expected_in_file(),
        "{tag}: lint count vs snapshot accounting ({stats:?})"
    );
    // Third book: the query engine over the captured stream agrees with
    // both the lint's walk and the telemetry snapshot.
    let query = Query::over(&mut StreamSource::new(bytes.to_vec()))
        .unwrap_or_else(|e| panic!("{tag}: captured stream must load: {e}"));
    let data = query.eval(&parse_agg("count(!(major == CONTROL))").unwrap());
    assert_eq!(
        data,
        stats.events_expected_in_file(),
        "{tag}: query count vs snapshot accounting"
    );
    assert_eq!(data as usize, report.data_events_checked, "{tag}");
    // The two books agree with each other, not just with the file.
    let snap = &stats.telemetry;
    assert_eq!(snap.events_logged(), stats.logger.events_logged, "{tag}");
    assert_eq!(snap.sink.events_lost, stats.events_lost, "{tag}");
    assert_eq!(snap.sink.buffers_dropped, stats.buffers_dropped, "{tag}");
}

#[test]
fn multi_writer_run_reconciles_with_the_lint() {
    const NCPUS: usize = 2;
    const WRITERS_PER_CPU: usize = 2;
    const EVENTS_PER_WRITER: u64 = 10_000;

    let out = SharedBuf::default();
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    // Enough ring headroom that reservations go through the CAS instead of
    // bouncing off a full ring: contention (not overrun) is what this run
    // exercises.
    let cfg = TraceConfig {
        buffer_words: 4096,
        buffers_per_cpu: 16,
        ..TraceConfig::small()
    };
    let logger = TraceLogger::builder()
        .geometry(cfg)
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(NCPUS)
        .build()
        .unwrap();
    register(&logger);
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .drain_policy(SessionConfig {
            heartbeat: Some(Duration::from_millis(1)),
            ..SessionConfig::default()
        })
        .start(out.clone())
        .unwrap();

    std::thread::scope(|s| {
        for cpu in 0..NCPUS {
            for _ in 0..WRITERS_PER_CPU {
                let h = session.logger().handle(cpu).unwrap();
                s.spawn(move || {
                    for i in 0..EVENTS_PER_WRITER {
                        // Overrun is allowed: a rejected log is counted as
                        // dropped by the producer, not logged.
                        h.log2(MajorId::TEST, 1, i, i * 2);
                    }
                });
            }
        }
    });
    let stats = session.finish();

    // Each successful reservation — data events and heartbeats alike —
    // attempts one reserve-wait observation, but the histogram buckets are
    // on the lossy *statistic* tier (a relaxed load+store pair, see the
    // counters module docs): with two writers sharing a CPU's counter
    // block, racing bumps can undercount. Promoting the buckets to the
    // exact tier was measured to blow the E20 <1% overhead gate, so the
    // deterministic direction here is one-sided: never more observations
    // than reservations, and never zero.
    let snap = &stats.telemetry;
    let beats = snap.sink.heartbeats_emitted;
    assert!(beats >= NCPUS as u64);
    let reservations: u64 = snap
        .per_cpu
        .iter()
        .map(|c| ktrace::telemetry::hist_count(&c.reserve_wait))
        .sum();
    assert!(
        reservations > 0 && reservations <= snap.events_logged() + beats,
        "at most one reserve-wait observation per reservation: {snap:?}"
    );
    assert!(stats.sink_alive(), "{stats:?}");

    let bytes = out.0.lock().unwrap().clone();
    let report = lint_bytes(&bytes, "multi-writer");
    reconcile(&report, &stats, &bytes, "multi-writer");
    // Heartbeats are in the file but not in the data count; the query
    // engine sees every beat that reached the stream.
    assert!(report.events_checked > report.data_events_checked);
    let query = Query::over(&mut StreamSource::new(bytes)).unwrap();
    let beats_in_file = query.eval(&parse_agg("count(major == CONTROL & minor == 3)").unwrap());
    assert!(beats_in_file >= NCPUS as u64, "{beats_in_file}");
}

#[test]
fn faults_matrix_sinks_reconcile_with_the_lint() {
    // Transient-error and partial-write sinks from the fault matrix: the
    // retrying writer rides both out losslessly, and the books still match
    // the lint exactly.
    for (seed, plan, tag) in [
        (0xA11CEu64, SinkPlan::transient_errors(0xA11CE), "transient"),
        (0xB0Bu64, SinkPlan::partial_writes(0xB0B), "partial"),
    ] {
        let out = SharedBuf::default();
        let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
        let logger = TraceLogger::builder()
            .geometry(TraceConfig::small())
            .clock(clock.clone() as Arc<dyn ClockSource>)
            .ncpus(1)
            .build()
            .unwrap();
        register(&logger);
        let sink = FaultySink::new(out.clone(), plan);
        let session = TraceSession::builder()
            .logger(logger.clone())
            .clock(clock.clone())
            .start(sink)
            .unwrap();
        for i in 0..2_000u64 {
            session
                .logger()
                .handle(0)
                .unwrap()
                .log2(MajorId::TEST, 1, i, i ^ seed);
        }
        let stats = session.finish();
        assert!(stats.lossless(), "{tag}: {stats:?}");
        let bytes = out.0.lock().unwrap().clone();
        let report = lint_bytes(&bytes, tag);
        reconcile(&report, &stats, &bytes, tag);
    }
}

#[test]
fn dying_sink_losses_reconcile_with_the_lint() {
    let out = SharedBuf::default();
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(1)
        .build()
        .unwrap();
    register(&logger);
    // The budget must be small enough that the sink dies even if the drain
    // thread is starved until `finish()`: the final drain alone flushes the
    // 4 pending ~1 KiB buffers, so a 2 KiB budget guarantees the death.
    let sink = DyingAtBoundarySink {
        out: out.clone(),
        budget: 2 * 1024,
        accepted: 0,
    };
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .drain_policy(SessionConfig {
            write_retries: 2,
            retry_backoff: Duration::from_micros(10),
            ..SessionConfig::default()
        })
        .start(sink)
        .unwrap();
    for i in 0..60_000u64 {
        session
            .logger()
            .handle(0)
            .unwrap()
            .log2(MajorId::TEST, 1, i, i);
    }
    let stats = session.finish();

    assert!(!stats.sink_alive(), "the sink must have died: {stats:?}");
    assert!(
        stats.buffers_dropped > 0 && stats.events_lost > 0,
        "{stats:?}"
    );

    // Even with the sink dead mid-session, the surviving prefix is a clean
    // trace and the loss accounting is *exact*, not approximate.
    let bytes = out.0.lock().unwrap().clone();
    let report = lint_bytes(&bytes, "dying");
    reconcile(&report, &stats, &bytes, "dying");
}
