//! §1/§2: "This event log may be examined while the system is running,
//! written out to disk, or **streamed over the network**."
//!
//! The writer side of the pipeline is sink-generic; here a session streams
//! completed buffers over a real TCP loopback connection and the receiver
//! reconstructs the identical trace — once over a clean socket and once
//! with the sender wrapped in a latency-injecting [`FaultySink`], with the
//! receiver reconstructing through the salvage reader.

use ktrace::faults::{FaultySink, SinkPlan};
use ktrace::io::salvage_bytes;
use ktrace::prelude::*;
use std::io::Read as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Streams a session over TCP loopback, the sink built by `wrap`. Returns
/// the received bytes plus the sender-side accounting.
fn stream_over_tcp<W, F>(wrap: F) -> (Vec<u8>, u64, u64)
where
    W: std::io::Write + Send + 'static,
    F: FnOnce(TcpStream) -> W,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");

    // Receiver: collect everything sent until the sender closes.
    let receiver = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut bytes = Vec::new();
        conn.read_to_end(&mut bytes).expect("drain stream");
        bytes
    });

    // Sender: a live session whose sink is the TCP connection.
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::new(
        TraceConfig::small(),
        clock.clone() as Arc<dyn ClockSource>,
        2,
    )
    .expect("logger");
    let conn = TcpStream::connect(addr).expect("connect");
    let session = TraceSession::new(wrap(conn), logger.clone(), clock.as_ref()).expect("session");

    let mut logged = 0u64;
    for i in 0..5_000u64 {
        for cpu in 0..2 {
            if session
                .logger()
                .handle(cpu)
                .expect("cpu")
                .log2(MajorId::TEST, cpu as u16, i, i * 2)
            {
                logged += 1;
            }
        }
    }
    let stats = session.finish(); // drops the socket → EOF
    assert!(stats.lossless(), "{stats:?}");

    let bytes = receiver.join().expect("receiver");
    assert!(!bytes.is_empty());
    (bytes, stats.records_written, logged)
}

#[test]
fn trace_streams_over_tcp() {
    let (bytes, records, logged) = stream_over_tcp(|conn| conn);

    // The byte stream received over the wire is a complete trace file.
    let mut reader =
        TraceFileReader::new(std::io::Cursor::new(bytes)).expect("parse streamed trace");
    assert_eq!(reader.record_count() as u64, records);
    let data = reader
        .events()
        .expect("merged events")
        .filter(|e| !e.is_control())
        .count() as u64;
    assert_eq!(data, logged, "every event crossed the wire intact");
    assert!(reader.anomalies().expect("scan").is_empty());
}

#[test]
fn latency_spikes_on_the_wire_lose_nothing() {
    let plan = SinkPlan::latency_only(0xD1A1, Duration::from_micros(200));
    let stats_slot = Arc::new(std::sync::Mutex::new(None));
    let slot = stats_slot.clone();
    let (bytes, records, logged) = stream_over_tcp(move |conn| {
        let sink = FaultySink::new(conn, plan);
        *slot.lock().unwrap() = Some(sink.stats());
        sink
    });
    let sink_stats = stats_slot.lock().unwrap().take().expect("sink built");
    assert!(
        sink_stats
            .latency_spikes
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the plan actually fired"
    );

    // The strict reader still accepts the stream: latency is not loss.
    let mut reader =
        TraceFileReader::new(std::io::Cursor::new(bytes.clone())).expect("parse streamed trace");
    assert_eq!(reader.record_count() as u64, records);

    // And the salvage reader reconstructs the identical event stream with a
    // clean report: nothing torn, nothing skipped, nothing trailing.
    let report = salvage_bytes(&bytes);
    assert!(report.clean(), "{}", report.render());
    assert_eq!(report.records.len() as u64, records);
    let strict: Vec<_> = reader.events().expect("merged events").collect();
    assert_eq!(report.events, strict, "salvage equals the strict merge");
    assert_eq!(report.data_events().count() as u64, logged);
}
