//! §1/§2: "This event log may be examined while the system is running,
//! written out to disk, or **streamed over the network**."
//!
//! The writer side of the pipeline is sink-generic; here a session streams
//! completed buffers over a real TCP loopback connection and the receiver
//! reconstructs the identical trace.

use ktrace::prelude::*;
use std::io::Read as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

#[test]
fn trace_streams_over_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");

    // Receiver: collect everything sent until the sender closes.
    let receiver = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut bytes = Vec::new();
        conn.read_to_end(&mut bytes).expect("drain stream");
        bytes
    });

    // Sender: a live session whose sink is the TCP connection.
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::new(
        TraceConfig::small(),
        clock.clone() as Arc<dyn ClockSource>,
        2,
    )
    .expect("logger");
    let conn = TcpStream::connect(addr).expect("connect");
    let session = TraceSession::new(conn, logger.clone(), clock.as_ref()).expect("session");

    let mut logged = 0u64;
    for i in 0..5_000u64 {
        for cpu in 0..2 {
            if session
                .logger()
                .handle(cpu)
                .expect("cpu")
                .log2(MajorId::TEST, cpu as u16, i, i * 2)
            {
                logged += 1;
            }
        }
    }
    let records = session.finish().expect("finish"); // drops the socket → EOF

    let bytes = receiver.join().expect("receiver");
    assert!(!bytes.is_empty());

    // The byte stream received over the wire is a complete trace file.
    let mut reader =
        TraceFileReader::new(std::io::Cursor::new(bytes)).expect("parse streamed trace");
    assert_eq!(reader.record_count() as u64, records);
    let data = reader
        .events()
        .expect("merged events")
        .filter(|e| !e.is_control())
        .count() as u64;
    assert_eq!(data, logged, "every event crossed the wire intact");
    assert!(reader.anomalies().expect("scan").is_empty());
}
