//! §1/§2: "This event log may be examined while the system is running,
//! written out to disk, or **streamed over the network**."
//!
//! The writer side of the pipeline is sink-generic; here a session streams
//! completed buffers over a real TCP loopback connection and the receiver
//! reconstructs the identical trace — once over a clean socket and once
//! with the sender wrapped in a latency-injecting [`FaultySink`], with the
//! receiver reconstructing through the salvage reader. The loopback
//! receiver and the salvage-vs-strict cross-check live in
//! `ktrace-testutil`, shared with the `ktrace-collectd` suites.

use ktrace::faults::{FaultySink, SinkPlan};
use ktrace::prelude::*;
use ktrace_testutil::{assert_salvage_matches_strict, strict_events, ByteReceiver};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Streams a session over TCP loopback, the sink built by `wrap`. Returns
/// the received bytes plus the sender-side accounting.
fn stream_over_tcp<W, F>(wrap: F) -> (Vec<u8>, u64, u64)
where
    W: std::io::Write + Send + 'static,
    F: FnOnce(TcpStream) -> W,
{
    let receiver = ByteReceiver::spawn();

    // Sender: a live session whose sink is the TCP connection.
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");
    let conn = TcpStream::connect(receiver.addr()).expect("connect");
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .start(wrap(conn))
        .expect("session");

    let mut logged = 0u64;
    for i in 0..5_000u64 {
        for cpu in 0..2 {
            if session
                .logger()
                .handle(cpu)
                .expect("cpu")
                .log2(MajorId::TEST, cpu as u16, i, i * 2)
            {
                logged += 1;
            }
        }
    }
    let stats = session.finish(); // drops the socket → EOF
    assert!(stats.lossless(), "{stats:?}");

    let bytes = receiver.join();
    assert!(!bytes.is_empty());
    (bytes, stats.records_written, logged)
}

#[test]
fn trace_streams_over_tcp() {
    let (bytes, records, logged) = stream_over_tcp(|conn| conn);

    // The byte stream received over the wire is a complete trace file.
    let mut reader =
        TraceFileReader::new(std::io::Cursor::new(bytes)).expect("parse streamed trace");
    assert_eq!(reader.record_count() as u64, records);
    let data = reader
        .events()
        .expect("merged events")
        .filter(|e| !e.is_control())
        .count() as u64;
    assert_eq!(data, logged, "every event crossed the wire intact");
    assert!(reader.anomalies().expect("scan").is_empty());
}

#[test]
fn latency_spikes_on_the_wire_lose_nothing() {
    let plan = SinkPlan::latency_only(0xD1A1, Duration::from_micros(200));
    let stats_slot = Arc::new(std::sync::Mutex::new(None));
    let slot = stats_slot.clone();
    let (bytes, records, logged) = stream_over_tcp(move |conn| {
        let sink = FaultySink::new(conn, plan);
        *slot.lock().unwrap() = Some(sink.stats());
        sink
    });
    let sink_stats = stats_slot.lock().unwrap().take().expect("sink built");
    assert!(
        sink_stats
            .latency_spikes
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the plan actually fired"
    );

    // The strict reader still accepts the stream (latency is not loss), and
    // the salvage reader reconstructs the identical event stream with a
    // clean report: nothing torn, nothing skipped, nothing trailing.
    let strict = strict_events(&bytes);
    let report = assert_salvage_matches_strict(&bytes);
    assert_eq!(report.records.len() as u64, records);
    assert_eq!(
        strict.iter().filter(|e| !e.is_control()).count() as u64,
        logged
    );
}
