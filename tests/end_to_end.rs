//! End-to-end integration: real-threaded OS simulator → lockless logger →
//! trace file → every analysis tool.

use ktrace::analysis::{
    render_listing, Breakdown, EventStats, ListingOptions, LockStats, PcProfile, Timeline,
    TimelineOptions, Trace,
};
use ktrace::ossim::workload::sdet;
use ktrace::ossim::{KTracer, Machine, MachineConfig};
use ktrace::prelude::*;
use ktrace::query::parse_agg;
use std::sync::Arc;

fn run_sdet_to_file(path: &std::path::Path) -> u64 {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::default())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");
    ktrace::events::register_all(&logger);
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .create(path)
        .expect("session");
    let machine = Machine::new(MachineConfig::fast_test(2), Arc::new(KTracer::new(logger)));
    let report = machine.run(sdet::build(sdet::SdetConfig {
        scripts: 3,
        commands_per_script: 3,
        ..Default::default()
    }));
    assert!(!report.aborted);
    assert_eq!(report.completions, 3);
    let stats = session.finish();
    assert!(stats.lossless(), "{stats:?}");
    stats.records_written
}

#[test]
fn full_pipeline_from_simulator_to_tools() {
    let dir = std::env::temp_dir().join(format!("ktrace-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.ktrace");
    let records = run_sdet_to_file(&path);
    assert!(records > 0);

    let trace = Trace::from_file(&path).expect("read");
    assert!(!trace.events.is_empty());

    // Every event stream invariant: global order, per-CPU order.
    assert!(trace.events.windows(2).all(|w| w[0].time <= w[1].time));

    // The listing renders every data event through the embedded registry.
    let listing = render_listing(&trace, &ListingOptions::data_only());
    assert!(listing.contains("TRACE_SCHED_CTX_SWITCH"), "{listing}");
    assert!(listing.contains("TRACE_USER_RUN_UL_LOADER"));
    assert!(
        !listing.contains("UNKNOWN_"),
        "all simulator events are described"
    );

    // Lock analysis sees the allocator chain.
    let locks = LockStats::compute(&trace);
    assert!(!locks.rows.is_empty());
    assert!(locks.render(5, "time").contains("GMalloc::gMalloc()"));

    // PC profile has samples attributed to named functions.
    let prof = PcProfile::compute(&trace);
    let total: u64 = prof.by_pid.keys().map(|&p| prof.samples(p)).sum();
    assert!(total > 0, "PC sampler produced samples");

    // Breakdown attributes time and counts IPC.
    let breakdown = Breakdown::compute(&trace);
    assert!(breakdown.processes.values().any(|p| p.ipc_out.calls > 0));
    assert!(breakdown.processes.contains_key(&1), "server pid present");

    // Timeline renders one lane per CPU.
    let tl = Timeline::build(
        &trace,
        &TimelineOptions {
            width: 60,
            ..Default::default()
        },
    );
    assert_eq!(tl.lanes.len(), 2);

    // Event stats counts the expected classes.
    let stats = EventStats::compute(&trace);
    assert!(stats.total > 100);

    // No garbling in a clean run.
    let mut reader = TraceFileReader::open(&path).expect("open");
    assert!(reader.anomalies().expect("scan").is_empty());

    // The standing trace properties hold on any clean run: the assertion
    // engine over the same file reports nothing on the 36+ band.
    let spec =
        Spec::from_file(std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("props/ktrace.toml"))
            .expect("spec");
    let query = Query::over(&mut FileSource::new(&path)).expect("query");
    let report = spec.check(&query);
    assert!(report.violations.is_empty(), "{}", report.render());
    assert_eq!(report.exit_code(), 0);
    // And the engine's count agrees with the Trace the tools analyzed.
    let data = query.eval(&parse_agg("count(!(major == CONTROL))").unwrap());
    assert_eq!(
        data as usize,
        trace.events.iter().filter(|e| !e.is_control()).count()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn random_access_windows_match_full_scan() {
    let dir = std::env::temp_dir().join(format!("ktrace-window-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("window.ktrace");
    run_sdet_to_file(&path);

    let trace = Trace::from_file(&path).expect("read");
    let span = trace.end() - trace.origin();
    let (t0, t1) = (trace.origin() + span / 4, trace.origin() + 3 * span / 4);

    let expected = trace
        .events
        .iter()
        .filter(|e| e.time >= t0 && e.time < t1 && !e.is_control())
        .count();

    // The anchor-seeking window load sees exactly the filtered full scan.
    let window = FileSource::new(&path)
        .load_window(t0, t1)
        .expect("window load");
    let count = parse_agg("count(!(major == CONTROL))").unwrap();
    assert_eq!(
        Query::new(window).eval(&count) as usize,
        expected,
        "window read must equal filtered full scan"
    );

    // A full load narrowed by a time predicate reaches the same count
    // through the in-memory index.
    let query = Query::over(&mut FileSource::new(&path)).expect("full load");
    let narrowed = parse_agg(&format!(
        "count(time >= {t0} & time < {t1} & !(major == CONTROL))"
    ))
    .unwrap();
    assert_eq!(query.eval(&narrowed) as usize, expected);

    std::fs::remove_dir_all(&dir).ok();
}
