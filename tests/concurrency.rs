//! Stress integration: the lockless invariants under heavy concurrency,
//! through the facade API.

use ktrace::prelude::*;
use std::sync::Arc;

/// Many threads per CPU region (K42 allows any thread to log to the buffer
/// of the CPU it runs on; migration means regions see multiple threads).
#[test]
fn many_threads_one_region_no_lost_or_corrupt_events() {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig {
            buffer_words: 2048,
            buffers_per_cpu: 8,
            ..TraceConfig::default()
        })
        .clock(clock as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .unwrap();

    let nthreads = 6;
    let per_thread = 20_000u64;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // A consumer drains both CPUs continuously.
    let drained = {
        let logger = logger.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut bufs = Vec::new();
            loop {
                let mut got = false;
                for cpu in 0..2 {
                    while let Some(b) = logger.take_buffer(cpu) {
                        bufs.push(b);
                        got = true;
                    }
                }
                if got {
                    continue;
                }
                if !stop.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::yield_now();
                    continue;
                }
                logger.flush_all();
                for cpu in 0..2 {
                    while let Some(b) = logger.take_buffer(cpu) {
                        bufs.push(b);
                    }
                }
                return bufs;
            }
        })
    };

    let workers: Vec<_> = (0..nthreads)
        .map(|t| {
            let h = logger.handle(t % 2).unwrap();
            std::thread::spawn(move || {
                let mut logged = 0u64;
                for i in 0..per_thread {
                    let payload = [t as u64, i, t as u64 ^ i];
                    if h.log_slice(MajorId::TEST, t as u16, &payload[..(i % 4) as usize]) {
                        logged += 1;
                    }
                }
                logged
            })
        })
        .collect();
    let logged: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    stop.store(true, std::sync::atomic::Ordering::Release);
    let buffers = drained.join().unwrap();

    let mut seen = 0u64;
    let mut dropped_marked = 0u64;
    for b in &buffers {
        assert!(b.complete, "cpu {} seq {} garbled", b.cpu, b.seq);
        let parsed = ktrace::core::parse_buffer(b.cpu, b.seq, &b.words, None);
        assert!(parsed.clean(), "{:?}", parsed.notes);
        for e in &parsed.events {
            if e.major == MajorId::TEST {
                seen += 1;
                // Payload integrity.
                if e.payload.len() == 3 {
                    assert_eq!(e.payload[0] ^ e.payload[1], e.payload[2]);
                }
            }
            if e.is_control() && e.minor == ktrace::format::ids::control::DROPPED {
                dropped_marked += e.payload[0];
            }
        }
    }
    assert_eq!(seen, logged, "every logged event read back exactly once");
    assert_eq!(
        logged + dropped_marked + logger.stats().dropped_pending,
        nthreads as u64 * per_thread
    );
}

/// Dynamic enable/disable while logging is in flight (paper goal 4).
#[test]
fn mask_toggling_under_load_is_safe() {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small().flight_recorder())
        .clock(clock as Arc<dyn ClockSource>)
        .ncpus(1)
        .build()
        .unwrap();
    let h = logger.handle(0).unwrap();
    let toggler = {
        let logger = logger.clone();
        std::thread::spawn(move || {
            for _ in 0..2_000 {
                logger.mask().disable(MajorId::TEST);
                logger.mask().enable(MajorId::TEST);
            }
        })
    };
    let mut logged = 0u64;
    for i in 0..200_000u64 {
        if h.log1(MajorId::TEST, 0, i) {
            logged += 1;
        }
    }
    toggler.join().unwrap();
    assert!(logged > 0);
    assert_eq!(logger.stats().events_logged, logged);
    // The stream still parses cleanly.
    let snap = logger.snapshot(0);
    for seq in snap.oldest_seq()..snap.current_seq() {
        let parsed = ktrace::core::parse_buffer(0, seq, snap.buffer(seq).unwrap(), None);
        assert!(parsed.clean(), "seq {seq}: {:?}", parsed.notes);
    }
}
