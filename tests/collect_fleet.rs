//! Fleet collection end to end: many concurrent ossim nodes streaming into
//! one collector, one node killed mid-stream, and the merged view still
//! reconciling exactly — events stored plus counted drops equals events
//! sent, the dead node's partial stream salvages cleanly, and the
//! `props/ktrace.toml` assertions answer identically whether they read the
//! store ([`CollectSource`]) or an equivalent local file.

use ktrace::collectd::{node, scrape, CollectSource, Collector, CollectorConfig};
use ktrace::faults::{FaultySink, SinkPlan};
use ktrace::ossim::{CrashPlan, CrashTracer, KTracer, NodeSpec};
use ktrace::prelude::*;
use ktrace_testutil::{assert_salvage_matches_strict, TempDir};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 8;

fn wait_for_drain(collector: &Collector, name: &str, records: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if collector.summary().node(name).is_some_and(|n| {
            n.records_stored + n.records_dropped >= records && n.live_connections == 0
        }) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "collector never drained {records} records for {name}: {:?}",
            collector.summary().node(name)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn a_fleet_reconciles_with_a_node_dying_mid_stream() {
    let tmp = TempDir::new("fleet");
    let mut config = CollectorConfig::new(tmp.path());
    config.records_per_shard = 16;
    let collector = Collector::bind("127.0.0.1:0", config).unwrap();
    let addr = collector.local_addr();

    // Eight healthy ossim nodes stream concurrently.
    let workers: Vec<_> = (0..NODES)
        .map(|i| {
            let name = format!("node-{i}");
            std::thread::spawn(move || {
                let spec = NodeSpec::new(&name, 2);
                let report = node::run_ossim_node(addr, &spec, Some(Duration::from_millis(5)))
                    .expect("node run");
                assert!(report.session.lossless(), "{name}: {:?}", report.session);
                (name, report)
            })
        })
        .collect();

    // One node's sink dies mid-stream: CrashTracer kills a CPU's logging
    // and FaultySink cuts the wire after a byte budget — the worst case the
    // paper's §3.1 commit counts are designed for.
    let dying = std::thread::spawn(move || {
        let conn = node::connect(addr, "dying-node").expect("connect");
        let session = TraceSession::builder()
            .geometry(TraceConfig::small())
            .ncpus(2)
            .register(ktrace::events::register_all)
            .start(FaultySink::new(
                conn,
                SinkPlan::permanent_failure(0xDEAD, 16 * 1024),
            ))
            .expect("session");
        let tracer = Arc::new(CrashTracer::new(
            session.logger().clone(),
            CrashPlan::new(1, 400),
        ));
        NodeSpec::new("dying-node", 2).run(tracer);
        session.finish() // not lossless: the sink is gone
    });

    let reports: Vec<(String, node::NodeReport)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();
    let dying_stats = dying.join().unwrap();
    assert!(
        !dying_stats.lossless(),
        "the dying node really lost its sink: {dying_stats:?}"
    );

    for (name, report) in &reports {
        wait_for_drain(&collector, name, report.session.records_written);
    }

    // The scrape endpoint serves per-node health while the service runs.
    let metrics = scrape::fetch(collector.scrape_addr(), "/metrics").unwrap();
    assert!(metrics.contains("ktrace_collectd_records_total{node=\"node-0\",outcome=\"stored\"}"));
    assert!(metrics.contains("ktrace_events_logged_total{node=\"node-0\",cpu=\"0\"}"));
    let nodes_json = scrape::fetch(collector.scrape_addr(), "/nodes").unwrap();
    assert!(nodes_json.contains("\"name\":\"dying-node\""));

    let summary = collector.shutdown();
    assert!(summary.reconciled(), "{}", summary.render());
    assert_eq!(summary.nodes.len(), NODES + 1);

    // Healthy nodes: everything the session shipped arrived and was stored.
    for (name, report) in &reports {
        let n = summary.node(name).expect("node registered");
        assert_eq!(n.records_received, report.session.records_written);
        assert_eq!(n.records_stored, n.records_received, "{name} lossless path");
        assert!(n.heartbeats_seen > 0, "{name} heartbeats rode the stream");
    }

    // The dying node: whatever made it across reconciles, and every shard
    // it left behind is salvageable with no disagreement against the strict
    // reader — a partial stream is still §3.1-recoverable data.
    let d = summary.node("dying-node").expect("dying node registered");
    assert!(d.records_received > 0, "some records landed before the cut");
    assert!(d.records_received < dying_stats.records_written + dying_stats.buffers_dropped);
    for shard in ktrace::collectd::store::shard_paths(tmp.path(), "dying-node") {
        let bytes = std::fs::read(&shard).unwrap();
        assert_salvage_matches_strict(&bytes);
    }

    // Fleet-wide merged view sees every stored data event, normalized.
    let mut fleet = CollectSource::open(tmp.path());
    let set = fleet.load().unwrap();
    assert_eq!(set.data_events().count() as u64, summary.events_stored());
    assert!(
        set.events.windows(2).all(|w| w[0].time <= w[1].time),
        "canonical order"
    );
}

/// The parity pin: identical bytes through the wire and into a local
/// file; `props/ktrace.toml` must answer identically over both.
#[test]
fn store_and_file_sources_agree_assertion_by_assertion() {
    let tmp = TempDir::new("fleet-parity2");
    let store = tmp.file("store");
    let file_path = tmp.file("parity.ktrace");
    let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(&store)).unwrap();

    struct TeeFile {
        wire: TcpStream,
        file: std::fs::File,
    }
    impl std::io::Write for TeeFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.wire.write_all(buf)?;
            self.file.write_all(buf)?;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.wire.flush()?;
            self.file.flush()
        }
    }

    let conn = node::connect(collector.local_addr(), "parity").unwrap();
    let session = TraceSession::builder()
        .geometry(TraceConfig::small())
        .ncpus(2)
        .register(ktrace::events::register_all)
        .heartbeat(Duration::from_millis(2))
        .start(TeeFile {
            wire: conn,
            file: std::fs::File::create(&file_path).unwrap(),
        })
        .unwrap();
    let tracer = Arc::new(KTracer::new(session.logger().clone()));
    NodeSpec::new("parity", 2).run(tracer);
    let stats = session.finish();
    assert!(stats.lossless(), "{stats:?}");
    wait_for_drain(&collector, "parity", stats.records_written);
    let summary = collector.shutdown();
    assert!(summary.node("parity").unwrap().lossless());

    // The pin: the store answers every assertion exactly as the file does —
    // same violations, same counts, same exit code. (Whether the run itself
    // is clean depends on drain timing; either way the sources must agree.)
    let spec = Spec::from_file("props/ktrace.toml").expect("load spec");
    let mut file_src = FileSource::new(&file_path);
    let mut store_src = CollectSource::node(&store, "parity");
    let file_report = spec.check(&Query::over(&mut file_src).unwrap());
    let store_report = spec.check(&Query::over(&mut store_src).unwrap());
    assert_eq!(
        format!("{file_report:?}"),
        format!("{store_report:?}"),
        "store must answer the spec identically to the file"
    );
    assert_eq!(file_report.exit_code(), store_report.exit_code());
}
