//! Four-source parity matrix: one trace, four read paths, identical query
//! results.
//!
//! A single deterministic ossim run (the golden-trace recipe) is read
//! through every [`TraceSource`]:
//!
//! * **snapshot** — the live logger's flight-recorder dump, taken before
//!   anything is drained;
//! * **file** — the strict on-disk reader over the drained trace file;
//! * **stream** — the byte stream a network receiver would accumulate, the
//!   sender's sink wrapped in a latency-injecting [`FaultySink`]
//!   (latency is not loss: the bytes arrive intact);
//! * **salvage** — the forgiving reader over those same streamed bytes.
//!
//! The contract under test (see `ktrace_query::source`): the **data
//! events** of one trace are identical through every source, and therefore
//! so is every query over them. Control events are transport artifacts
//! (drained buffers carry fillers a live snapshot has not written), so the
//! matrix compares data events and control-free queries.

use ktrace::faults::{FaultySink, SinkPlan};
use ktrace::ossim::workload::Workload;
use ktrace::ossim::{KTracer, Machine, MachineConfig, Op, ProcessSpec, Program};
use ktrace::prelude::*;
use ktrace::query::{parse_agg, SalvageSource, SnapshotSource, StreamSource};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn all_four_sources_agree_on_one_trace() {
    // -- One deterministic run (the golden-trace recipe) -----------------
    let clock = Arc::new(ManualClock::new(1_000, 1));
    let logger = TraceLogger::builder()
        .geometry(TraceConfig {
            buffer_words: 4096,
            buffers_per_cpu: 16,
            ..TraceConfig::small()
        })
        .clock(clock)
        .ncpus(1)
        .build()
        .unwrap();
    ktrace::events::register_all(&logger);

    let mut config = MachineConfig::fast_test(1);
    config.pc_sample_period = None;
    config.time_slice = Duration::from_secs(3600);
    let machine = Machine::new(config, Arc::new(KTracer::new(logger)));

    let program = Program::new()
        .compute(1_000, ktrace::events::func::USER_COMPUTE)
        .syscall(ktrace::events::sysno::GETPID)
        .malloc(128)
        .page_fault(0x7000)
        .syscall(ktrace::events::sysno::CLOSE)
        .op(Op::CountCompletion);
    let report = machine.run(Workload {
        processes: (0..3)
            .map(|i| ProcessSpec::new(format!("parity{i}"), program.clone()))
            .collect(),
        user_locks: 0,
    });
    assert!(!report.aborted);

    let logger = machine.tracer().logger();
    assert_eq!(logger.stats().dropped_pending, 0, "lossless run required");

    // -- Source 1: live snapshot, before anything is drained -------------
    let snapshot_set = SnapshotSource::new(logger, 1_000_000_000)
        .load()
        .expect("snapshot load");

    // -- Drain once; write the same buffers to disk and "over the wire" --
    let header = ktrace::io::FileHeader {
        ncpus: 1,
        buffer_words: logger.config().buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: logger.registry(),
    };
    let buffers: Vec<_> = logger.drain_all().into_iter().flatten().collect();
    assert!(!buffers.is_empty());

    let dir = std::env::temp_dir().join(format!("ktrace-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("parity.ktrace");
    let mut fw = ktrace::io::TraceFileWriter::create(&path, &header).unwrap();
    let plan = SinkPlan::latency_only(0xBEEF, Duration::from_micros(50));
    let mut sw = ktrace::io::TraceFileWriter::new(FaultySink::new(Vec::new(), plan), &header)
        .expect("stream writer");
    for b in &buffers {
        fw.write_buffer(b).unwrap();
        sw.write_buffer(b).unwrap();
    }
    fw.finish().unwrap();
    let streamed: Vec<u8> = sw.finish().expect("stream finish").into_inner();

    // -- Sources 2-4: file, drained stream, salvage over the same bytes --
    let file_set = FileSource::new(&path).load().expect("file load");
    let stream_set = StreamSource::new(streamed.clone())
        .load()
        .expect("stream load");
    let salvage_set = SalvageSource::from_bytes(streamed)
        .load()
        .expect("salvage load");
    std::fs::remove_dir_all(&dir).ok();

    let sources = [
        ("snapshot", &snapshot_set),
        ("file", &file_set),
        ("stream", &stream_set),
        ("salvage", &salvage_set),
    ];

    // -- Data-event parity: the raw contract ----------------------------
    let reference: Vec<_> = snapshot_set.data_events().cloned().collect();
    assert!(!reference.is_empty(), "the run produced data events");
    for (name, set) in &sources[1..] {
        let got: Vec<_> = set.data_events().cloned().collect();
        assert_eq!(
            got, reference,
            "{name} data events diverged from the snapshot"
        );
    }

    // -- Query parity: every control-free expression agrees --------------
    let queries = [
        "count(!(major == CONTROL))",
        "count(major == SCHED)",
        "count(major == LOCK & minor == 2)",
        "count(major == SYSCALL | major == MEM)",
        "max(!(major == CONTROL), time)",
        "sum(major == LOCK & minor == 2, payload[0])",
        "rate(major == SCHED)",
        "max_gap(major == SCHED)",
        "unpaired(span(LOCK, 2 -> 3, key = payload[0]))",
        "max_duration(span(PROC, 0 -> 1, key = payload[0]))",
        "count(time >= 100 & time < 2000 & !(major == CONTROL))",
        "count(cpu == 0 & !(major == CONTROL))",
    ];
    for text in queries {
        let agg = parse_agg(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let reference = Query::new(snapshot_set.clone()).eval(&agg);
        for (name, set) in &sources[1..] {
            let got = Query::new((*set).clone()).eval(&agg);
            assert_eq!(
                got, reference,
                "`{text}` diverged between snapshot and {name}"
            );
        }
    }

    // All four sources see the same clock, so rates are comparable at all.
    for (name, set) in &sources {
        assert_eq!(set.ticks_per_sec, 1_000_000_000, "{name} clock rate");
    }
}
