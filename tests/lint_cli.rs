//! End-to-end `ktrace-lint` CLI: exit-code contract and output formats.

use std::path::Path;
use std::process::Command;

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ktrace-lint"))
        .args(args)
        .output()
        .expect("spawn ktrace-lint")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/srclint/tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn clean_workspace_exits_zero_even_denying_warnings() {
    let out = lint(&["--root", env!("CARGO_MANIFEST_DIR"), "--deny-warnings"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("0 violation(s), 0 warning(s)"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(lint(&["--frobnicate"]).status.code(), Some(2));
    assert_eq!(lint(&["--pass", "nonsense"]).status.code(), Some(2));
    assert_eq!(lint(&["--root"]).status.code(), Some(2));
}

#[test]
fn missing_inputs_exit_one() {
    let out = lint(&["--root", "/nonexistent/ktrace-workspace"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("required input"));
}

#[test]
fn each_pass_fails_with_its_distinct_code() {
    let out = lint(&["--root", &fixture("schema_drift"), "--pass", "schema"]);
    assert_eq!(out.status.code(), Some(30));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[schema-mismatch]"));

    let out = lint(&["--root", &fixture("idspace"), "--pass", "idspace"]);
    assert_eq!(out.status.code(), Some(31));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[id-space-collision]"));

    let out = lint(&["--root", &fixture("hotpath"), "--pass", "hotpath"]);
    assert_eq!(out.status.code(), Some(32));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[hot-path-hazard]"));
}

#[test]
fn concurrency_passes_fail_with_their_distinct_codes() {
    let out = lint(&["--root", &fixture("broken_atomics"), "--pass", "atomics"]);
    assert_eq!(out.status.code(), Some(33));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[atomic-order-violation]"));

    let out = lint(&[
        "--root",
        &fixture("broken_lockorder"),
        "--pass",
        "lockorder",
    ]);
    assert_eq!(out.status.code(), Some(34));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[lock-order-cycle]"));

    let out = lint(&["--root", &fixture("broken_unsafe"), "--pass", "unsafe"]);
    assert_eq!(out.status.code(), Some(35));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[unsafe-unjustified]"));
}

#[test]
fn several_failing_passes_exit_lowest_and_are_all_listed() {
    // broken_multi trips lockorder (34) and unsafe (35): exit is the lower
    // code, and the report names both failing passes.
    let out = lint(&["--root", &fixture("broken_multi")]);
    assert_eq!(out.status.code(), Some(34));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("failing pass(es): lockorder, unsafe"),
        "{stdout}"
    );
}

#[test]
fn full_run_reports_the_most_severe_code() {
    // All passes on the schema fixture: schema mismatch (30) outranks any
    // other class present, matching ktrace-verify's min-code convention.
    let out = lint(&["--root", &fixture("schema_drift")]);
    assert_eq!(out.status.code(), Some(30));
}

#[test]
fn json_output_is_structured() {
    let out = lint(&["--root", &fixture("idspace"), "--json"]);
    assert_eq!(out.status.code(), Some(31));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"violations\""));
    assert!(stdout.contains("\"kind\": \"id-space-collision\""));
    assert!(stdout.contains("\"exit_code\": 31"));
    assert!(stdout.trim_start().starts_with('{') && stdout.trim_end().ends_with('}'));
}
