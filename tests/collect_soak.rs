//! The no-wedge soak: 64 concurrent streams into a collector deliberately
//! configured to lose — two store workers dragged by an artificial write
//! delay behind depth-2 queues. The pin is the degrade-don't-wedge
//! contract: every sender completes promptly, overflow shows up as counted
//! drops (visible on the scrape endpoint), and the accounting still
//! reconciles exactly — `events_stored + events_dropped == events_received`
//! for every node.

use ktrace::collectd::{node, scrape, Collector, CollectorConfig};
use ktrace::prelude::*;
use ktrace_testutil::TempDir;
use std::time::{Duration, Instant};

const STREAMS: usize = 64;
const EVENTS_PER_STREAM: u64 = 3_000;

#[test]
fn sixty_four_lossy_streams_never_wedge_and_always_reconcile() {
    let tmp = TempDir::new("soak");
    let mut config = CollectorConfig::new(tmp.path());
    config.shards = 2;
    config.queue_depth = 2;
    config.records_per_shard = 8;
    config.store_write_delay = Some(Duration::from_millis(2));
    let collector = Collector::bind("127.0.0.1:0", config).unwrap();
    let addr = collector.local_addr();

    let started = Instant::now();
    let senders: Vec<_> = (0..STREAMS)
        .map(|i| {
            std::thread::spawn(move || {
                let name = format!("soak-{i:02}");
                let conn = node::connect(addr, &name).expect("connect");
                let session = TraceSession::builder()
                    .geometry(TraceConfig::small())
                    .ncpus(1)
                    .start(conn)
                    .expect("session");
                let h = session.logger().handle(0).expect("cpu 0");
                let mut logged = 0u64;
                for n in 0..EVENTS_PER_STREAM {
                    if h.log2(MajorId::TEST, 1, n, n ^ 0x5A) {
                        logged += 1;
                    }
                }
                let stats = session.finish();
                assert!(stats.lossless(), "{name}: {stats:?}");
                (name, stats.records_written, logged)
            })
        })
        .collect();

    let sent: Vec<(String, u64, u64)> = senders.into_iter().map(|s| s.join().unwrap()).collect();
    let send_elapsed = started.elapsed();
    // The wedge check: senders finish on the senders' schedule, not the
    // dragged store's. 64 × 3k events must not take minutes.
    assert!(
        send_elapsed < Duration::from_secs(60),
        "senders took {send_elapsed:?} — backpressure reached the sockets"
    );

    // Wait for the queues (depth 2, so nearly nothing buffered) to drain.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = collector.summary();
        let drained = s.nodes.len() == STREAMS
            && s.nodes
                .iter()
                .all(|n| n.live_connections == 0 && n.reconciled());
        if drained {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "store never drained: {}",
            s.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Overflow is visible as counted drops on the scrape endpoint while the
    // service is still up.
    let live = collector.summary();
    assert!(
        live.records_dropped() > 0,
        "the drag was configured to force drops:\n{}",
        live.render()
    );
    let metrics = scrape::fetch(collector.scrape_addr(), "/metrics").unwrap();
    let dropped_on_scrape: u64 = metrics
        .lines()
        .filter(|l| {
            l.starts_with("ktrace_collectd_records_total{") && l.contains("outcome=\"dropped\"")
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(dropped_on_scrape > 0, "drops surface on /metrics");

    let summary = collector.shutdown();
    assert!(summary.reconciled(), "{}", summary.render());
    assert_eq!(summary.nodes.len(), STREAMS);
    for (name, records, logged) in &sent {
        let n = summary.node(name).expect("node registered");
        assert_eq!(
            n.records_received, *records,
            "{name}: every record crossed the wire"
        );
        assert_eq!(n.events_received, *logged, "{name}: exact event accounting");
        assert_eq!(
            n.events_stored + n.events_dropped,
            n.events_received,
            "{name}: stored + dropped == received"
        );
    }
}
