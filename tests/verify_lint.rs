//! Integration: the stream linter over a live multi-writer logger.
//!
//! Several threads log concurrently through the lockless reservation path
//! while a consumer drains buffers; everything drained must satisfy every
//! stream invariant the linter checks.

use ktrace::core::CompletedBuffer;
use ktrace::prelude::*;
use ktrace::verify::lint::lint_completed_buffers;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn multi_writer_trace_lints_clean() {
    const NCPUS: usize = 4;
    const EVENTS_PER_CPU: u64 = 2_000;

    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock)
        .ncpus(NCPUS)
        .build()
        .unwrap();
    logger.register_event(
        MajorId::TEST,
        1,
        EventDescriptor::new("TRACE_TEST_PAIR", "64 64", "a %0[%d] b %1[%d]").unwrap(),
    );

    let done = AtomicBool::new(false);
    let collected: Mutex<Vec<CompletedBuffer>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        let writers: Vec<_> = (0..NCPUS)
            .map(|cpu| {
                let logger = &logger;
                s.spawn(move || {
                    let h = logger.handle(cpu).unwrap();
                    for i in 0..EVENTS_PER_CPU {
                        h.log2(MajorId::TEST, 1, i, i * 2);
                    }
                })
            })
            .collect();
        // Concurrent consumer: drain buffers while writers are mid-stream.
        let consumer = s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                for cpu in 0..NCPUS {
                    if let Some(b) = logger.take_buffer(cpu) {
                        collected.lock().unwrap().push(b);
                    }
                }
                std::thread::yield_now();
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        consumer.join().unwrap();
    });

    logger.flush_all();
    let mut bufs = collected.into_inner().unwrap();
    for per_cpu in logger.drain_all() {
        bufs.extend(per_cpu);
    }
    assert!(bufs.len() >= NCPUS, "expected at least one buffer per CPU");

    let report = lint_completed_buffers(&bufs, &logger.registry(), logger.config().buffer_words);
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.events_checked as u64 >= NCPUS as u64);
}
