//! Dynamic ⊆ static lock-order cross-check.
//!
//! The static lock graph (`ktrace-lint --pass lockorder`) claims to cover
//! every acquisition order the kernel can exhibit. This test holds it to
//! that: run a workload that nests real lock acquisitions on the simulated
//! machine, reconstruct the *observed* lock orders from the trace's
//! `LOCK` events, and require every observed edge to be present in the
//! graph the linter builds from source. A dynamic edge the static analysis
//! misses means the linter under-approximates and its cycle verdicts
//! cannot be trusted.

use ktrace::analysis::Trace;
use ktrace::ossim::kernel::{ALLOC_LOCK_BASE, DIR_LOCK_ID, PAGE_LOCK_ID, USER_LOCK_BASE};
use ktrace::ossim::{KTracer, Machine, MachineConfig, Op, ProcessSpec, Program, Workload};
use ktrace::prelude::*;
use ktrace::srclint::{lockorder, workspace_source_files};
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;

/// Maps a traced lock ID to its source-level lock class (the struct field
/// the static graph names). The ID bases are the kernel's, re-exported so
/// this mapping cannot silently drift.
fn lock_class(id: u64) -> Option<&'static str> {
    if id >= USER_LOCK_BASE {
        Some("user_locks")
    } else if id >= DIR_LOCK_ID {
        Some("dir_lock")
    } else if id >= PAGE_LOCK_ID {
        Some("page_lock")
    } else if id >= ALLOC_LOCK_BASE {
        Some("alloc_locks")
    } else {
        None
    }
}

#[test]
fn trace_observed_lock_orders_are_covered_by_the_static_graph() {
    // Drive the real-threaded machine through nested acquisitions: the
    // user lock is held across malloc (alloc_locks), the FS directory
    // calls (dir_lock), and page free (page_lock).
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small().flight_recorder())
        .clock(clock as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");
    ktrace::events::register_all(&logger);
    let machine = Machine::new(MachineConfig::fast_test(2), Arc::new(KTracer::new(logger)));

    let nested = Program::new()
        .op(Op::UserLock { lock: 0 })
        .op(Op::Malloc { size: 4096 })
        .op(Op::FsOpen { path: 7 })
        .op(Op::FsClose { path: 7 })
        .op(Op::FreePages { pages: 2 })
        .op(Op::UserUnlock { lock: 0 });
    let mut workload = Workload::new(vec![
        ProcessSpec::new("nested-a", nested.clone()),
        ProcessSpec::new("nested-b", nested),
    ]);
    workload.user_locks = 1;
    let report = machine.run(workload);
    assert!(!report.aborted, "nested workload must not deadlock");

    // Reconstruct observed acquisition orders: per-thread held stack from
    // ACQUIRED/RELEASED (payload: [lock_id, tid, …]), one class-level edge
    // per (held, newly-acquired) pair. Same-class pairs are skipped — the
    // static graph models class-level order, not per-instance order.
    let trace = Trace::from_logger(machine.tracer().logger(), 1_000_000_000);
    let mut held: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut dynamic: BTreeSet<(String, String)> = BTreeSet::new();
    for e in trace.of_major(MajorId::LOCK) {
        match e.minor {
            ktrace::events::lock::ACQUIRED if e.payload.len() >= 2 => {
                let (lock, tid) = (e.payload[0], e.payload[1]);
                let stack = held.entry(tid).or_default();
                for &h in stack.iter() {
                    if let (Some(a), Some(b)) = (lock_class(h), lock_class(lock)) {
                        if a != b {
                            dynamic.insert((a.to_string(), b.to_string()));
                        }
                    }
                }
                stack.push(lock);
            }
            ktrace::events::lock::RELEASED if e.payload.len() >= 2 => {
                if let Some(stack) = held.get_mut(&e.payload[1]) {
                    if let Some(pos) = stack.iter().rposition(|&l| l == e.payload[0]) {
                        stack.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }
    assert!(
        dynamic.contains(&("user_locks".to_string(), "alloc_locks".to_string())),
        "workload must have nested malloc under the user lock; saw {dynamic:?}"
    );

    // The static graph over the real workspace sources.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for rel in workspace_source_files(root) {
        if let Ok(src) = std::fs::read_to_string(root.join(&rel)) {
            files.push((rel, src));
        }
    }
    let graph = lockorder::build_lock_graph(&files);
    assert!(graph.cycles().is_empty(), "workspace graph must be acyclic");

    for (from, to) in &dynamic {
        assert!(
            graph.edges.contains_key(&(from.clone(), to.clone())),
            "trace-observed lock order {from} -> {to} is missing from the \
             static graph — the lockorder pass under-approximates"
        );
    }
}
