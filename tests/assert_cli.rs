//! `ktrace-tools assert` end to end: every property in `props/ktrace.toml`
//! fires on a trace engineered to violate exactly it, and each violation
//! maps to its own exit code on the shared table's assertion band:
//!
//! * 36 — a count/sum/rate bound (`no-drop-markers`)
//! * 37 — unpaired spans (`lock-acquire-release-balance`)
//! * 38 — span duration (`lock-hold-bounded`)
//! * 39 — cadence (`heartbeat-cadence`)
//!
//! A clean trace passes the whole spec (exit 0), a missing `--spec` is a
//! usage error (exit 2), and an unreadable spec is an operational failure
//! (exit 1) — assertion verdicts never collide with those reserved codes.

use ktrace::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

const BIN: &str = env!("CARGO_BIN_EXE_ktrace-tools");

fn spec_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("props/ktrace.toml")
}

/// Builds a one-CPU trace file whose events come from `build`, driven by a
/// manual clock so every fixture is deterministic.
fn write_trace(dir: &Path, name: &str, build: impl FnOnce(&TraceLogger, &ManualClock)) -> PathBuf {
    let clock = Arc::new(ManualClock::new(1_000, 1));
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock.clone())
        .ncpus(1)
        .build()
        .unwrap();
    build(&logger, &clock);
    assert_eq!(logger.stats().dropped_pending, 0, "fixture {name} overran");

    let path = dir.join(format!("{name}.ktrace"));
    let header = ktrace::io::FileHeader {
        ncpus: 1,
        buffer_words: logger.config().buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: logger.registry(),
    };
    let mut w = ktrace::io::TraceFileWriter::create(&path, &header).unwrap();
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    w.finish().unwrap();
    path
}

fn run_assert(trace: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN)
        .arg("assert")
        .arg(trace)
        .args(extra)
        .output()
        .expect("spawn ktrace-tools");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const LOCK_ACQUIRED: u16 = 2;
const LOCK_RELEASED: u16 = 3;
const CTRL_DROPPED: u16 = 2;
const CTRL_HEARTBEAT: u16 = 3;

#[test]
fn each_property_fires_with_its_own_exit_code() {
    let dir = std::env::temp_dir().join(format!("ktrace-assert-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = spec_path();
    let spec = spec.to_str().unwrap();

    // Clean: balanced short lock holds, steady heartbeats, no drops.
    let clean = write_trace(&dir, "clean", |l, c| {
        let h = l.handle(0).unwrap();
        for beat in 0..4u64 {
            h.log1(MajorId::CONTROL, CTRL_HEARTBEAT, beat);
            h.log2(MajorId::LOCK, LOCK_ACQUIRED, 0x10, 7);
            h.log2(MajorId::LOCK, LOCK_RELEASED, 0x10, 7);
            c.advance(1_000_000_000); // one second between beats
        }
    });
    let (code, stdout, _) = run_assert(&clean, &["--spec", spec]);
    assert_eq!(code, 0, "clean trace must pass the full spec:\n{stdout}");
    assert_eq!(stdout.matches("PASS ").count(), 5, "{stdout}");
    assert!(stdout.contains("5 assertion(s) checked"), "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");

    // 36: a drop marker in the stream violates the count bound.
    let dropped = write_trace(&dir, "dropped", |l, _| {
        let h = l.handle(0).unwrap();
        h.log1(MajorId::CONTROL, CTRL_DROPPED, 5);
    });
    let (code, stdout, _) = run_assert(&dropped, &["--spec", spec]);
    assert_eq!(code, 36, "{stdout}");
    assert!(stdout.contains("FAIL no-drop-markers"), "{stdout}");

    // 37: an acquire with no matching release leaves an unpaired span.
    let unpaired = write_trace(&dir, "unpaired", |l, _| {
        let h = l.handle(0).unwrap();
        h.log2(MajorId::LOCK, LOCK_ACQUIRED, 0x10, 7);
    });
    let (code, stdout, _) = run_assert(&unpaired, &["--spec", spec]);
    assert_eq!(code, 37, "{stdout}");
    assert!(
        stdout.contains("FAIL lock-acquire-release-balance"),
        "{stdout}"
    );

    // 38: a two-second hold (the clock jumps mid-span) breaks the duration
    // bound, while the span itself pairs cleanly.
    let held = write_trace(&dir, "held", |l, c| {
        let h = l.handle(0).unwrap();
        h.log2(MajorId::LOCK, LOCK_ACQUIRED, 0x10, 7);
        c.advance(2_000_000_000);
        h.log2(MajorId::LOCK, LOCK_RELEASED, 0x10, 7);
    });
    let (code, stdout, _) = run_assert(&held, &["--spec", spec]);
    assert_eq!(code, 38, "{stdout}");
    assert!(stdout.contains("FAIL lock-hold-bounded"), "{stdout}");
    assert!(
        stdout.contains("PASS lock-acquire-release-balance"),
        "{stdout}"
    );

    // 39: three seconds between heartbeats breaks the cadence bound.
    let stalled = write_trace(&dir, "stalled", |l, c| {
        let h = l.handle(0).unwrap();
        h.log1(MajorId::CONTROL, CTRL_HEARTBEAT, 0);
        c.advance(3_000_000_000);
        h.log1(MajorId::CONTROL, CTRL_HEARTBEAT, 1);
    });
    let (code, stdout, _) = run_assert(&stalled, &["--spec", spec]);
    assert_eq!(code, 39, "{stdout}");
    assert!(stdout.contains("FAIL heartbeat-cadence"), "{stdout}");

    // The salvage reader sees the same events in an intact file.
    let (code, stdout, _) = run_assert(&held, &["--spec", spec, "--salvage"]);
    assert_eq!(
        code, 38,
        "salvage path must reach the same verdict:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn operational_errors_stay_off_the_assertion_band() {
    let dir = std::env::temp_dir().join(format!("ktrace-assert-errs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let clean = write_trace(&dir, "ok", |l, _| {
        let h = l.handle(0).unwrap();
        h.log1(MajorId::TEST, 0, 1);
    });

    // No --spec at all: usage error.
    let (code, _, _) = run_assert(&clean, &[]);
    assert_eq!(code, 2);

    // Unreadable spec: plain failure, never an assertion verdict.
    let (code, _, stderr) = run_assert(&clean, &["--spec", "/nonexistent/props.toml"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("cannot load spec"), "{stderr}");

    // Unreadable trace: same.
    let missing = dir.join("missing.ktrace");
    let out = Command::new(BIN)
        .args(["assert", missing.to_str().unwrap(), "--spec"])
        .arg(spec_path())
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}
