//! The adaptive control plane's closed loop, end to end and deterministic:
//! overload → detect → shed → recover → restore, then the whole episode
//! reconstructed post-hoc from the trace's CONTROL audit events alone.
//!
//! No wall clock, no threads, no real sink. Each control interval is an
//! explicit observe → step call; "overload" is a burst larger than the
//! undrained ring, so the drop counter spikes exactly when the test says
//! so. The burst size tracks the sampling rate (`offered = admitted ×
//! rate`), which keeps the admitted load — and therefore the drop delta —
//! roughly constant while the controller walks the rate up: the departure
//! stays a departure until the mask closes at [`MAX_LEVEL`].

use ktrace::adapt::{direction, MAX_LEVEL};
use ktrace::format::ids::control;
use ktrace::prelude::*;
use std::sync::Arc;

const TICKS_PER_SEC: u64 = 1_000_000_000;

/// Offers `n` USER events on cpu 0; the logger admits, samples out, masks,
/// or drops each one according to its current control state.
fn burst(logger: &TraceLogger, seq: &mut u64, n: u64, phase: u64) {
    let h = logger.handle(0).expect("cpu 0 handle");
    for _ in 0..n {
        h.log2(MajorId::USER, ktrace::events::user::APP_TICK, *seq, phase);
        *seq += 1;
    }
}

#[test]
fn closed_loop_sheds_recovers_and_leaves_a_queryable_audit_trail() {
    let logger = TraceLogger::builder()
        .geometry(TraceConfig {
            buffer_words: 256,
            buffers_per_cpu: 4,
            ..TraceConfig::small()
        })
        .clock(Arc::new(ManualClock::new(1_000, 1)))
        .ncpus(1)
        .build()
        .unwrap();
    ktrace::events::register_all(&logger);

    let mut detector = Detector::default();
    let mut controller = Controller::new(ControllerConfig {
        shed_majors: vec![MajorId::USER],
        recover_after: 2,
        audit_cpu: 0,
    });
    let mut buffers = Vec::new();
    let mut seq = 0u64;

    // -- Phase 1: quiet baseline -----------------------------------------
    // A modest paced load, drained every interval: the detector learns that
    // "healthy" means a near-zero drop delta.
    for interval in 0..12 {
        burst(&logger, &mut seq, 32, 1);
        buffers.extend(logger.drain_all().into_iter().flatten());
        let anomalies = detector.observe(&logger.telemetry().snapshot());
        let r = controller.step(&logger, &anomalies);
        assert!(anomalies.is_empty(), "baseline interval {interval} fired");
        assert_eq!(r.level, 0);
    }
    assert_eq!(
        logger.telemetry().snapshot().events_dropped(),
        0,
        "baseline is lossless"
    );

    // -- Phase 2: overload ------------------------------------------------
    // Each interval offers far more than the ring holds; the drop delta
    // departs its baseline, the detector fires, and the controller walks
    // the USER sampling rate up — then closes the mask at MAX_LEVEL.
    let mut escalations = 0;
    for _ in 0..12 {
        if controller.level() == MAX_LEVEL {
            break;
        }
        let rate = logger.sampling().rate(MajorId::USER);
        burst(&logger, &mut seq, 4096 * rate, 2);
        // Drain *before* stepping so the audit events always have room.
        buffers.extend(logger.drain_all().into_iter().flatten());
        let anomalies = detector.observe(&logger.telemetry().snapshot());
        let r = controller.step(&logger, &anomalies);
        if r.escalated {
            escalations += 1;
        }
    }
    assert!(
        controller.ever_fired(),
        "overload never tripped the detector"
    );
    assert_eq!(controller.level(), MAX_LEVEL, "overload reached max shed");
    assert_eq!(escalations, usize::from(MAX_LEVEL));
    assert_eq!(logger.sampling().rate(MajorId::USER), 16);
    assert!(
        !logger.mask().is_enabled(MajorId::USER),
        "mask closes at max level"
    );
    assert!(
        logger.mask().is_enabled(MajorId::CONTROL),
        "CONTROL never sheds"
    );
    assert!(
        logger.telemetry().snapshot().events_dropped() > 0,
        "overload really dropped"
    );

    // Shedding is real: while masked, offered USER load is absorbed as
    // masked events, not logged or dropped.
    let before = logger.telemetry().snapshot();
    burst(&logger, &mut seq, 100, 3);
    let after = logger.telemetry().snapshot();
    assert_eq!(after.events_logged(), before.events_logged());
    assert_eq!(after.events_dropped(), before.events_dropped());
    assert_eq!(after.events_masked(), before.events_masked() + 100);

    // -- Phase 3: recovery ------------------------------------------------
    // The overload stops; healthy intervals walk the level back to 0 and
    // restore full detail.
    for _ in 0..(u32::from(MAX_LEVEL) * 3 + 4) {
        if !controller.shedding() {
            break;
        }
        burst(&logger, &mut seq, 32, 4);
        buffers.extend(logger.drain_all().into_iter().flatten());
        let anomalies = detector.observe(&logger.telemetry().snapshot());
        assert!(anomalies.is_empty(), "recovery load re-fired the detector");
        controller.step(&logger, &anomalies);
    }
    assert!(!controller.shedding(), "loop never recovered");
    assert_eq!(logger.sampling().rate(MajorId::USER), 1, "rate restored");
    assert!(logger.mask().is_enabled(MajorId::USER), "mask reopened");

    // -- Post-hoc: the episode is reconstructible from the trace ----------
    logger.flush_all();
    buffers.extend(logger.drain_all().into_iter().flatten());
    let dir = std::env::temp_dir().join(format!("ktrace-adapt-loop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("adapt-loop.ktrace");
    let header = ktrace::io::FileHeader {
        ncpus: 1,
        buffer_words: logger.config().buffer_words as u32,
        ticks_per_sec: TICKS_PER_SEC,
        clock_synchronized: true,
        registry: logger.registry(),
    };
    let mut w = ktrace::io::TraceFileWriter::create(&path, &header).unwrap();
    for b in &buffers {
        w.write_buffer(b).unwrap();
    }
    w.finish().unwrap();

    let set = FileSource::new(&path).load().expect("file load");
    let query = Query::new(set);
    let count = |expr: &str| {
        let agg = ktrace::query::parse_agg(expr).unwrap_or_else(|e| panic!("{expr}: {e}"));
        query.eval(&agg)
    };

    // The detector's verdicts were audited, every one on a known track.
    let anomalies = count("count(major == CONTROL & minor == 4)");
    assert_eq!(anomalies, u64::from(MAX_LEVEL));
    // The shed/restore sequence is symmetric: every narrowing SAMPLE_ADJUST
    // and MASK_ADJUST has a widening partner.
    let narrow = |minor: u64| {
        count(&format!(
            "count(major == CONTROL & minor == {minor} & payload[0] == {})",
            direction::NARROW
        ))
    };
    let widen = |minor: u64| {
        count(&format!(
            "count(major == CONTROL & minor == {minor} & payload[0] == {})",
            direction::WIDEN
        ))
    };
    assert!(narrow(u64::from(control::SAMPLE_ADJUST)) >= 1);
    assert_eq!(
        narrow(u64::from(control::SAMPLE_ADJUST)),
        widen(u64::from(control::SAMPLE_ADJUST))
    );
    assert_eq!(narrow(u64::from(control::MASK_ADJUST)), 1);
    assert_eq!(widen(u64::from(control::MASK_ADJUST)), 1);
    // The loss the loop was reacting to is in the trace too.
    assert!(count("count(major == CONTROL & minor == 2)") >= 1);

    // The standing spec's adapt property holds on this (deliberately
    // lossy) trace: every audited anomaly names a schema-known track.
    let spec =
        Spec::from_file(std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("props/ktrace.toml"))
            .expect("props spec parses");
    let prop = spec
        .properties
        .iter()
        .find(|p| p.name == "adapt-anomaly-tracks-known")
        .expect("standing adapt assertion exists");
    let (actual, holds) = query.check(&prop.assertion);
    assert!(holds, "'{}' violated (actual {actual})", prop.name);

    std::fs::remove_dir_all(&dir).ok();
}
