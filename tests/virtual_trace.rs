//! Integration: virtual-time multiprocessor traces feed the same tools.

use ktrace::analysis::{find_deadlock, Breakdown, LockStats, PcProfile, Trace};
use ktrace::ossim::workload::{micro, sdet};
use ktrace::prelude::TraceConfig;
use ktrace::vsim::{CostParams, Scheme, VirtualMachine, VmConfig};

fn emitted_sdet(ncpus: usize) -> Trace {
    let mut cfg = VmConfig::new(ncpus);
    cfg.alloc_regions = 1;
    let mut machine = VirtualMachine::new(cfg, Scheme::LocklessPerCpu, CostParams::default())
        .with_emission(TraceConfig {
            buffer_words: 16 * 1024,
            buffers_per_cpu: 16,
            ..TraceConfig::default()
        });
    machine.run(&sdet::build(sdet::SdetConfig {
        scripts: 2 * ncpus,
        commands_per_script: 3,
        ..Default::default()
    }));
    Trace::from_logger(machine.emitted_logger().expect("emission"), 1_000_000_000)
}

#[test]
fn eight_way_virtual_trace_feeds_all_tools() {
    let trace = emitted_sdet(8);
    // All 8 simulated CPUs logged.
    for cpu in 0..8 {
        assert!(
            trace.events.iter().any(|e| e.cpu == cpu),
            "cpu {cpu} silent"
        );
    }
    // Per-CPU virtual timestamps are monotonic.
    for cpu in 0..8 {
        let mut last = 0;
        for e in trace.events.iter().filter(|e| e.cpu == cpu) {
            assert!(e.time >= last);
            last = e.time;
        }
    }
    let locks = LockStats::compute(&trace);
    assert!(
        locks.total_wait_ns() > 0,
        "8 CPUs on one allocator lock must contend"
    );
    let prof = PcProfile::compute(&trace);
    assert!(prof.by_pid.len() > 1);
    let breakdown = Breakdown::compute(&trace);
    assert!(
        breakdown.processes[&1].served.time_ns > 0,
        "server time attributed"
    );
}

#[test]
fn virtual_deadlock_workload_completes_but_shows_no_cycle() {
    // Virtual locks are time-based resources: the AB-BA workload cannot
    // actually deadlock there (that's what the real-threaded machine is
    // for), and the analysis agrees there is no unresolved cycle.
    let mut machine = VirtualMachine::new(
        VmConfig::new(2),
        Scheme::LocklessPerCpu,
        CostParams::default(),
    )
    .with_emission(TraceConfig::default());
    let report = machine.run(&micro::ab_ba_deadlock(10_000));
    assert_eq!(report.tasks_completed, 2);
    let trace = Trace::from_logger(machine.emitted_logger().unwrap(), 1_000_000_000);
    assert!(find_deadlock(&trace).is_none());
}

#[test]
fn hardware_counters_flow_through_the_unified_stream() {
    // §2: counter samples ride the same per-CPU lockless buffers as every
    // other event and are analyzable afterwards.
    let trace = emitted_sdet(4);
    let report = ktrace::analysis::CounterReport::compute(&trace);
    assert!(
        report.total(ktrace::events::counter::CYCLES) > 0,
        "cycles sampled"
    );
    assert!(
        report.total(ktrace::events::counter::CACHE_MISSES) > 0,
        "cache misses sampled"
    );
    let strip = report.intensity_strip(ktrace::events::counter::CYCLES, 40);
    assert_eq!(strip.chars().count(), 40);
    assert!(report.render(40).contains("cache_misses"));
}

#[test]
fn masked_majors_suppress_events_in_emission() {
    let mut machine = VirtualMachine::new(
        VmConfig::new(2),
        Scheme::LocklessPerCpu,
        CostParams::default(),
    )
    .with_emission(TraceConfig::default());
    machine
        .emitted_logger()
        .unwrap()
        .mask()
        .disable(ktrace::format::MajorId::PROF);
    machine.run(&micro::compute_only(4, 500_000));
    let trace = Trace::from_logger(machine.emitted_logger().unwrap(), 1_000_000_000);
    assert!(
        !trace
            .events
            .iter()
            .any(|e| e.major == ktrace::format::MajorId::PROF),
        "masked class must not appear"
    );
    assert!(trace
        .events
        .iter()
        .any(|e| e.major == ktrace::format::MajorId::SCHED));
}
