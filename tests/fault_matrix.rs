//! The fault matrix: every [`FaultPlan`] driven through the full
//! log → stream → salvage → verify pipeline, under several seeds.
//!
//! Seeds come from `KTRACE_FAULT_SEED` (comma-separated, `0x…` or decimal)
//! when set; otherwise from a fixed default set. Setting
//! `KTRACE_RANDOM_SEED` instead picks one fresh seed and prints it, so a CI
//! failure is reproducible by exporting the logged value.

use ktrace::faults::{FaultPlan, FaultySink, FileCorruptor, RegionCorruptor, SinkPlan};
use ktrace::io::salvage::{repair, salvage_bytes, SalvageReport};
use ktrace::io::{FileHeader, TraceFileWriter};
use ktrace::prelude::*;
use ktrace::verify::{lint_file, salvage_to_report, ViolationKind};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn seeds() -> Vec<u64> {
    fn parse(s: &str) -> u64 {
        let s = s.trim();
        match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).expect("hex seed"),
            None => s.parse().expect("decimal seed"),
        }
    }
    if let Ok(list) = std::env::var("KTRACE_FAULT_SEED") {
        return list.split(',').map(parse).collect();
    }
    if std::env::var("KTRACE_RANDOM_SEED").is_ok() {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64;
        let seed = nanos ^ (u64::from(std::process::id()) << 32);
        eprintln!(
            "fault-matrix: random run, seed {seed:#x} \
             (reproduce with KTRACE_FAULT_SEED={seed:#x})"
        );
        return vec![seed];
    }
    vec![0xA11CE, 0xB0B, 0xC0FFEE]
}

/// A deterministic 2-CPU trace image plus the geometry needed to map byte
/// offsets back to records.
struct CleanTrace {
    bytes: Vec<u8>,
    header_len: usize,
    record_size: usize,
    /// Events (including control) per record, from a clean salvage.
    per_record: Vec<usize>,
}

const NCPUS: usize = 2;
const EVENTS_PER_CPU: u64 = 400;

/// Registers descriptors for the events the matrix logs, so survivors pass
/// the self-description lint.
fn register_test_events(logger: &TraceLogger) {
    for minor in 0..NCPUS as u16 {
        logger.register_event(
            MajorId::TEST,
            minor,
            EventDescriptor::new(
                &format!("TRACE_TEST_MATRIX{minor}"),
                "64 64",
                "i %0[%d] x %1[%d]",
            )
            .unwrap(),
        );
    }
}

fn file_header(logger: &TraceLogger, cfg: TraceConfig) -> FileHeader {
    FileHeader {
        ncpus: NCPUS as u32,
        buffer_words: cfg.buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: logger.registry(),
    }
}

fn build_clean_trace(seed: u64) -> CleanTrace {
    let cfg = TraceConfig::small();
    let clock = Arc::new(ManualClock::new(1, 1));
    let logger = TraceLogger::builder()
        .geometry(cfg)
        .clock(clock)
        .ncpus(NCPUS)
        .build()
        .unwrap();
    register_test_events(&logger);
    let header = file_header(&logger, cfg);
    let mut w = TraceFileWriter::new(Vec::new(), &header).unwrap();
    for i in 0..EVENTS_PER_CPU {
        for cpu in 0..NCPUS {
            assert!(logger
                .handle(cpu)
                .unwrap()
                .log2(MajorId::TEST, cpu as u16, i, i ^ seed));
            if let Some(b) = logger.take_buffer(cpu) {
                w.write_buffer(&b).unwrap();
            }
        }
    }
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    let bytes = w.finish().unwrap();

    let (header, header_len) = FileHeader::decode(&bytes).expect("clean header");
    let baseline = salvage_bytes(&bytes);
    assert!(baseline.clean(), "clean trace must salvage clean");
    CleanTrace {
        header_len,
        record_size: header.record_size(),
        per_record: baseline.records.iter().map(|r| r.events).collect(),
        bytes,
    }
}

impl CleanTrace {
    /// Record indices whose byte extent overlaps `[lo, hi)`.
    fn records_in(&self, lo: usize, hi: usize) -> Vec<usize> {
        (0..self.per_record.len())
            .filter(|k| {
                let start = self.header_len + k * self.record_size;
                lo < start + self.record_size && hi > start
            })
            .collect()
    }

    /// Events everywhere except the given records.
    fn events_outside(&self, affected: &[usize]) -> usize {
        self.per_record
            .iter()
            .enumerate()
            .filter(|(k, _)| !affected.contains(k))
            .map(|(_, n)| n)
            .sum()
    }
}

/// The acceptance bar: salvage must recover at least every event outside
/// the records the fault touched.
fn assert_recovery(ct: &CleanTrace, report: &SalvageReport, lo: usize, hi: usize, what: &str) {
    if lo < ct.header_len {
        // The fault reached the file header: no recovery floor can be
        // promised (the geometry itself may be gone). Reaching this point
        // without a panic is the guarantee; the proptest hammers this case.
        return;
    }
    let affected = ct.records_in(lo, hi);
    let floor = ct.events_outside(&affected);
    assert!(
        report.events.len() >= floor,
        "{what}: recovered {} events, but {} live outside the {} damaged record(s)",
        report.events.len(),
        floor,
        affected.len()
    );
}

/// Writes `bytes`, repaired, to a temp file and asserts the strict linter
/// accepts the survivors with exit code 0.
fn assert_survivors_lint_clean(bytes: &[u8], report: &SalvageReport, tag: &str) {
    let Some(repaired) = repair(bytes, report) else {
        return; // nothing salvageable (e.g. the header itself is gone)
    };
    let dir = std::env::temp_dir().join(format!("ktrace-matrix-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repaired.ktrace");
    std::fs::write(&path, &repaired).unwrap();
    let lint = lint_file(&path).expect("repaired file must load strictly");
    assert!(
        lint.is_clean(),
        "{tag}: surviving events must lint clean, got:\n{}",
        lint.render()
    );
    assert_eq!(lint.exit_code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// In-memory sink that survives being consumed by the session, so the test
/// can inspect the bytes afterwards.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Partial writes on the sink: the session's retrying writer resumes
/// mid-record, so the stream arrives byte-perfect.
fn run_partial_write(seed: u64) {
    let out = SharedBuf::default();
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(NCPUS)
        .build()
        .unwrap();
    register_test_events(&logger);
    let sink = FaultySink::new(out.clone(), SinkPlan::partial_writes(seed));
    let sink_stats = sink.stats();
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .start(sink)
        .unwrap();
    let mut logged = 0u64;
    for i in 0..2_000u64 {
        for cpu in 0..NCPUS {
            if session
                .logger()
                .handle(cpu)
                .unwrap()
                .log2(MajorId::TEST, cpu as u16, i, i)
            {
                logged += 1;
            }
        }
    }
    let stats = session.finish();
    assert!(stats.lossless(), "{stats:?}");
    assert!(
        sink_stats
            .partial_writes
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the plan actually fired"
    );

    let bytes = out.0.lock().unwrap().clone();
    let report = salvage_bytes(&bytes);
    assert!(report.clean(), "{}", report.render());
    assert_eq!(report.data_events().count() as u64, logged);
    assert_eq!(salvage_to_report(&report).exit_code(), 0);
    assert_survivors_lint_clean(&bytes, &report, "partial-write");
}

/// The file is cut short (a short read of the image): whole records before
/// the cut survive, the partial tail is recovered as a truncated prefix.
fn run_short_read(seed: u64) {
    let ct = build_clean_trace(seed);
    let mut bytes = ct.bytes.clone();
    let kept = FileCorruptor::new(seed).truncate(&mut bytes);
    let report = salvage_bytes(&bytes);
    assert_recovery(&ct, &report, kept, ct.bytes.len(), "short-read");
    if kept >= ct.header_len {
        let lint = salvage_to_report(&report);
        if !report.clean() {
            assert_eq!(lint.exit_code(), ViolationKind::TruncatedBuffer.exit_code());
        }
        assert_survivors_lint_clean(&bytes, &report, "short-read");
    }
}

/// Garbage lands mid-record: the salvage reader re-anchors on the next
/// record magic and loses at most the damaged records.
fn run_mid_buffer_truncation(seed: u64) {
    let ct = build_clean_trace(seed);
    let mut bytes = ct.bytes.clone();
    let mutation = FileCorruptor::new(seed)
        .zero_span(&mut bytes)
        .expect("nonempty file");
    let (lo, hi) = match mutation {
        ktrace::faults::corrupt::FileMutation::ZeroedSpan { offset, len } => (offset, offset + len),
        other => panic!("unexpected mutation {other:?}"),
    };
    let report = salvage_bytes(&bytes);
    assert_recovery(&ct, &report, lo, hi, "mid-buffer-truncation");
    if lo >= ct.header_len {
        assert_survivors_lint_clean(&bytes, &report, "mid-buffer-truncation");
    }
}

/// A commit count desyncs before drain: no events are lost, but the record
/// is flagged garbled and maps to the shared exit code 11.
fn run_commit_desync(seed: u64) {
    let cfg = TraceConfig::small();
    let clock = Arc::new(ManualClock::new(1, 1));
    let logger = TraceLogger::builder()
        .geometry(cfg)
        .clock(clock)
        .ncpus(NCPUS)
        .build()
        .unwrap();
    register_test_events(&logger);
    let header = file_header(&logger, cfg);
    let mut logged = 0u64;
    for i in 0..40u64 {
        for cpu in 0..NCPUS {
            assert!(logger
                .handle(cpu)
                .unwrap()
                .log2(MajorId::TEST, cpu as u16, i, i));
            logged += 1;
        }
    }
    let (slot, delta) = RegionCorruptor::new(seed).desync_commit(&logger, 1);
    assert_ne!(delta, 0, "the corruptor must move the count (slot {slot})");

    let mut w = TraceFileWriter::new(Vec::new(), &header).unwrap();
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    let bytes = w.finish().unwrap();
    let report = salvage_bytes(&bytes);
    // The words themselves are intact: every event is still recovered.
    assert_eq!(report.data_events().count() as u64, logged);
    assert!(report.torn_records() >= 1, "{}", report.render());
    let lint = salvage_to_report(&report);
    assert_eq!(lint.exit_code(), ViolationKind::GarbledCommit.exit_code());
    assert_survivors_lint_clean(&bytes, &report, "commit-desync");
}

/// A CPU dies mid-reservation: its torn buffer is flagged, every event from
/// the surviving CPU and the victim's pre-crash buffers is recovered.
fn run_cpu_crash(seed: u64) {
    let cfg = TraceConfig::small();
    let clock = Arc::new(ManualClock::new(1, 1));
    let logger = TraceLogger::builder()
        .geometry(cfg)
        .clock(clock)
        .ncpus(NCPUS)
        .build()
        .unwrap();
    register_test_events(&logger);
    let header = file_header(&logger, cfg);
    let victim = 1usize;
    let mut victim_logged = 0u64;
    let mut survivor_logged = 0u64;
    for i in 0..30u64 {
        for cpu in 0..NCPUS {
            assert!(logger
                .handle(cpu)
                .unwrap()
                .log2(MajorId::TEST, cpu as u16, i, i));
            if cpu == victim {
                victim_logged += 1;
            } else {
                survivor_logged += 1;
            }
        }
    }
    // The crash: a reservation claimed, never written, never committed.
    RegionCorruptor::new(seed)
        .abandon_reservation(&logger, victim)
        .expect("reservation");
    // The victim is dead; the rest of the machine keeps logging.
    for i in 0..30u64 {
        assert!(logger.handle(0).unwrap().log2(MajorId::TEST, 0, i, i + 7));
        survivor_logged += 1;
    }

    let mut w = TraceFileWriter::new(Vec::new(), &header).unwrap();
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    let bytes = w.finish().unwrap();
    let report = salvage_bytes(&bytes);
    assert!(report.torn_records() >= 1, "{}", report.render());
    // Every survivor-CPU event is recovered; the victim's events before the
    // tear are, too (the tear truncates decode, never rewinds it).
    let survivors = report.data_events().filter(|e| e.cpu == 0).count() as u64;
    assert_eq!(survivors, survivor_logged);
    let victims = report.data_events().filter(|e| e.cpu == victim).count() as u64;
    assert!(victims <= victim_logged);
    assert!(victims >= victim_logged.saturating_sub(cfg.buffer_words as u64));
    let lint = salvage_to_report(&report);
    assert_eq!(lint.exit_code(), ViolationKind::GarbledCommit.exit_code());
    assert_survivors_lint_clean(&bytes, &report, "cpu-crash");
}

#[test]
fn every_fault_plan_salvages_and_verifies() {
    for &seed in &seeds() {
        // The match is exhaustive on purpose: adding a FaultPlan without a
        // matrix row fails to compile.
        for plan in FaultPlan::ALL {
            eprintln!("fault-matrix: {} seed {seed:#x}", plan.name());
            match plan {
                FaultPlan::PartialWrite => run_partial_write(seed),
                FaultPlan::ShortRead => run_short_read(seed),
                FaultPlan::MidBufferTruncation => run_mid_buffer_truncation(seed),
                FaultPlan::CommitDesync => run_commit_desync(seed),
                FaultPlan::CpuCrash => run_cpu_crash(seed),
            }
        }
    }
}
