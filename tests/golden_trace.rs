//! Golden-trace snapshot: a fixed ossim run's merged event listing must
//! match the committed fixture byte for byte.
//!
//! Determinism is engineered, not assumed: one simulated CPU (so scheduling
//! is a deterministic round-robin), no PC sampler (its period is wall
//! time), a time slice far longer than the run (no preemption points), a
//! [`ManualClock`] stepping once per read (timestamps count clock reads,
//! not nanoseconds), and a listing restricted to majors whose payloads are
//! pure simulation state — LOCK/HWPERF/PROF payloads carry wall-clock
//! nanoseconds and are excluded.
//!
//! Regenerate the fixture after an intentional event-stream change with:
//! `KTRACE_BLESS=1 cargo test --test golden_trace`.

use ktrace::ossim::workload::Workload;
use ktrace::ossim::{KTracer, Machine, MachineConfig, Op, ProcessSpec, Program};
use ktrace::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const FIXTURE: &str = "tests/fixtures/golden_listing.txt";

fn golden_listing() -> String {
    let clock = Arc::new(ManualClock::new(1_000, 1));
    let logger = TraceLogger::builder()
        .geometry(TraceConfig {
            buffer_words: 4096,
            buffers_per_cpu: 16,
            ..TraceConfig::small()
        })
        .clock(clock)
        .ncpus(1)
        .build()
        .unwrap();
    ktrace::events::register_all(&logger);

    let mut config = MachineConfig::fast_test(1);
    config.pc_sample_period = None; // the sampler fires on wall time
    config.time_slice = Duration::from_secs(3600); // no preemption points
    let machine = Machine::new(config, Arc::new(KTracer::new(logger)));

    let program = Program::new()
        .compute(1_000, ktrace::events::func::USER_COMPUTE)
        .syscall(ktrace::events::sysno::GETPID)
        .malloc(128)
        .page_fault(0x7000)
        .syscall(ktrace::events::sysno::CLOSE)
        .op(Op::CountCompletion);
    let report = machine.run(Workload {
        processes: (0..3)
            .map(|i| ProcessSpec::new(format!("golden{i}"), program.clone()))
            .collect(),
        user_locks: 0,
    });
    assert!(!report.aborted);
    assert_eq!(report.tasks_completed, 3);

    let logger = machine.tracer().logger();
    let stats = logger.stats();
    assert_eq!(stats.dropped_pending, 0, "the ring must be big enough");

    // Write the trace out and read it back through the standard pipeline.
    let dir = std::env::temp_dir().join(format!("ktrace-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden.ktrace");
    let header = ktrace::io::FileHeader {
        ncpus: 1,
        buffer_words: logger.config().buffer_words as u32,
        ticks_per_sec: 1_000_000_000,
        clock_synchronized: true,
        registry: logger.registry(),
    };
    let mut w = ktrace::io::TraceFileWriter::create(&path, &header).unwrap();
    for bufs in logger.drain_all() {
        for b in bufs {
            w.write_buffer(&b).unwrap();
        }
    }
    w.finish().unwrap();

    let trace = Trace::from_file(&path).unwrap();
    let listing = render_listing(
        &trace,
        &ListingOptions {
            // Only majors whose payloads are pure simulation state; LOCK,
            // HWPERF, and PROF payloads embed wall-clock measurements.
            majors: vec![
                MajorId::PROC,
                MajorId::USER,
                MajorId::SCHED,
                MajorId::SYSCALL,
                MajorId::MEM,
                MajorId::EXCEPTION,
            ],
            hide_control: true,
            limit: 0,
        },
    );
    std::fs::remove_dir_all(&dir).ok();
    listing
}

#[test]
fn merged_listing_matches_the_committed_fixture() {
    let listing = golden_listing();
    assert!(!listing.is_empty());

    // The run itself must be reproducible before the fixture can be.
    let again = golden_listing();
    assert_eq!(listing, again, "two identical runs diverged");

    if std::env::var("KTRACE_BLESS").is_ok() {
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(FIXTURE, &listing).unwrap();
        eprintln!("golden fixture blessed: {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing: run with KTRACE_BLESS=1 to create it");
    assert_eq!(
        listing, expected,
        "merged listing drifted from {FIXTURE}; if the change is \
         intentional, regenerate with KTRACE_BLESS=1"
    );
}
