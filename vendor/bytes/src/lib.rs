//! Offline stub of the `bytes` API surface this workspace uses
//! (see `vendor/README.md`): the `Buf` / `BufMut` cursor traits for
//! `&[u8]`, `Vec<u8>`, and `&mut [u8]`.

/// Read access to a buffer of bytes with an advancing cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// The bytes between the cursor and the end of the buffer.
    fn chunk(&self) -> &[u8];

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a buffer of bytes with an advancing cursor.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    /// # Panics
    /// Panics if `src` is longer than the remaining slice.
    fn put_slice(&mut self, src: &[u8]) {
        assert!(self.len() >= src.len(), "buffer overflow");
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec_and_slice() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(42);
        out.put_slice(b"xy");
        out.put_u8(7);

        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn mut_slice_cursor_advances() {
        let mut out = [0u8; 12];
        let mut cur = &mut out[..];
        cur.put_u32_le(1);
        cur.put_u64_le(2);
        assert!(cur.is_empty());
        assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(out[4..].try_into().unwrap()), 2);
    }
}
