//! Offline stub of the `rand` 0.8 API surface this workspace uses
//! (see `vendor/README.md`).
//!
//! Backed by SplitMix64 — statistically adequate for the simulator's
//! workload shuffles and fuzzing corpora, deterministic per seed (the only
//! property the workspace's tests rely on), and structurally faithful to the
//! `rand` trait split (`RngCore` / `Rng` / `SeedableRng`). Not the real
//! `StdRng`: sequences differ from upstream for the same seed.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// An integer that can be drawn uniformly from an interval. The `SampleRange`
/// impls are generic over this (matching upstream's shape) so type inference
/// can flow from the use site into an unannotated range literal.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// A uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

// Spans are computed in 128-bit (signed types via i128 so negative bounds
// don't sign-extend into bogus spans).
macro_rules! impl_sample_uniform {
    ($wide:ty; $($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as $wide - lo as $wide) as u128;
                (lo as $wide + (rng.next_u64() as u128 % span) as $wide) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as $wide - lo as $wide) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                (lo as $wide + (rng.next_u64() as u128 % span) as $wide) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u128; u8, u16, u32, u64, usize);
impl_sample_uniform!(i128; i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a `u64` for reproducible streams.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (here: SplitMix64, see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: u64 = rng.gen_range(0..=u64::MAX);
            let _ = f;
        }
        // All values of a small range are eventually hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_biased_by_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}
