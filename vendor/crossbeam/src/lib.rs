//! Offline stub of the `crossbeam` API surface this workspace uses
//! (see `vendor/README.md`): only `utils::CachePadded`.

/// Miscellaneous utilities.
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, so that
    /// accesses to neighbouring `CachePadded` values never false-share.
    ///
    /// 128-byte alignment matches upstream's choice for x86-64 (adjacent
    /// line prefetch) and aarch64 big.LITTLE cores.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads `value` to a cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_aligns_and_derefs() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(p.into_inner(), 7);
    }
}
