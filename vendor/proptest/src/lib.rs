//! Offline stub of the `proptest` API surface this workspace uses
//! (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests need: the
//! [`Strategy`] trait with `prop_map`, integer-range / tuple / collection /
//! sample / simple-regex strategies, `any::<T>()`, the `proptest!` runner
//! macro with `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case panics with its seed and case index;
//! * sampling is deterministic per test (seeded from the test name), with
//!   `PROPTEST_CASES` still honoured so CI can dial effort up or down;
//! * the regex string strategy supports only the `.{m,n}`-style patterns
//!   used in this workspace (a literal prefix plus an optional `.{m,n}`).

pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude` for the names this workspace imports.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirrors the `proptest::prop` module hierarchy (`prop::collection::vec`,
/// `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }

    /// Value-sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
///
/// Uses the same `match` shape as `assert_eq!` so temporaries in the operands
/// live for the whole comparison.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
}

/// Combines strategies with the same value type, choosing one per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strategy))+
    };
}

/// The property-test runner macro: each `fn name(arg in strategy, ..)` item
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 1u8..9, v in prop::collection::vec(0u64..100, 0..10)) {
            prop_assert!((1..9).contains(&x));
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_maps_unions(
            pair in (0u32..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
            choice in prop_oneof![(0u64..5).prop_map(Some), (5u64..9).prop_map(|_| None)],
            pick in prop::sample::select(vec![2u32, 4, 8]),
            s in ".{0,12}",
        ) {
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 20);
            if let Some(v) = choice {
                prop_assert!(v < 5);
            }
            prop_assert!([2u32, 4, 8].contains(&pick));
            prop_assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            fn inner(x in 0u8..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
