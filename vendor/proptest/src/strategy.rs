//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe for a fixed `Value` (combinators are `Sized`-gated), so
/// heterogeneous strategies can be unioned behind `Box<dyn Strategy>`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type with a canonical "any value" strategy (integers, bool).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// A strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// Signed ranges go through i128 so negative bounds don't sign-extend into
// bogus spans.
macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A number-of-elements range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy generating `Vec`s of `element` values with a length drawn from
/// `size` (mirrors `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.size_in(self.size.lo, self.size.hi);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// A strategy choosing uniformly among `options` (mirrors
/// `prop::sample::select`).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// The strategy built by `prop_oneof!`: one of several same-valued
/// strategies, chosen uniformly per case.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union with no arms yet (`prop_oneof!` always adds at least one).
    pub fn empty() -> Union<V> {
        Union { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn or(mut self, strategy: impl Strategy<Value = V> + 'static) -> Union<V> {
        self.arms.push(Box::new(strategy));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "union with no arms");
        self.arms[rng.below(self.arms.len() as u64) as usize].sample(rng)
    }
}

/// Regex-ish string strategy: supports the patterns this workspace uses —
/// an optional literal prefix followed by an optional `.{m,n}` that expands
/// to `m..=n` random printable ASCII characters.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (literal, counted) = match self.find(".{") {
            Some(at) => (&self[..at], Some(&self[at + 2..])),
            None => (&self[..], None),
        };
        let mut out = String::from(literal);
        if let Some(rest) = counted {
            let body = rest.strip_suffix('}').unwrap_or(rest);
            let (m, n) = match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8)),
                None => {
                    let k = body.trim().parse().unwrap_or(1);
                    (k, k)
                }
            };
            let count = rng.size_in(m.min(n), n.max(m));
            for _ in 0..count {
                // Printable ASCII, space through tilde.
                out.push((b' ' + rng.below(95) as u8) as char);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn full_u64_range_is_samplable() {
        let mut rng = TestRng::for_test("full");
        let s = 0u64..=u64::MAX;
        let mut high_bit = false;
        for _ in 0..200 {
            high_bit |= s.sample(&mut rng) >> 63 == 1;
        }
        assert!(high_bit, "full-domain sampling should hit the high half");
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..100 {
            let any_len = ".{0,40}".sample(&mut rng);
            assert!(any_len.chars().count() <= 40);
            assert!(any_len.chars().all(|c| (' '..='~').contains(&c)));
            let fixed = "abc".sample(&mut rng);
            assert_eq!(fixed, "abc");
            let prefixed = "id-.{2,4}".sample(&mut rng);
            assert!(prefixed.starts_with("id-"));
            assert!((5..=7).contains(&prefixed.chars().count()));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..100 {
            assert!(vec(any::<u8>(), 3).sample(&mut rng).len() == 3);
            let v = vec(any::<u8>(), 1..5).sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            let w = vec(any::<u8>(), 0..=2).sample(&mut rng);
            assert!(w.len() <= 2);
        }
    }
}
