//! Runner configuration, failure type, and the deterministic test RNG.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property (still overridable by the
    /// `PROPTEST_CASES` environment variable, which takes the minimum so CI
    /// knobs like miri's can only shrink the work).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: cases.min(env_cases().unwrap_or(cases)).max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(256).max(1),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Why a single case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The runner's random source: SplitMix64 seeded from the test's name, so a
/// property's case sequence is stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from `test_name`.
    pub fn for_test(test_name: &str) -> TestRng {
        // FNV-1a over the name; any stable spread works.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A uniform `usize` in `[lo, hi]`.
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn with_cases_is_positive() {
        assert!(ProptestConfig::with_cases(0).cases >= 1);
        assert_eq!(
            ProptestConfig::with_cases(24).cases.max(1),
            ProptestConfig::with_cases(24).cases
        );
    }
}
