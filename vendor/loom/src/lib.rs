//! Offline stub of the `loom` API surface this workspace uses
//! (see `vendor/README.md`).
//!
//! **Not a model checker.** Real loom exhaustively explores thread
//! interleavings; this facade maps the same names onto `std` primitives and
//! runs the model body once with real threads. The loom test still compiles
//! and its assertions run under whatever interleaving the OS happens to
//! schedule, but exhaustive exploration requires the real crate.

/// Synchronization primitives mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomics mirroring `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Thread spawning mirroring `loom::thread`.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Runs `f` once (upstream explores all interleavings; see crate docs).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    f();
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_body_with_real_threads() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let (n, log) = (n.clone(), log.clone());
                handles.push(super::thread::spawn(move || {
                    let v = n.fetch_add(1, Ordering::SeqCst);
                    log.lock().unwrap().push(v);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
            assert_eq!(log.lock().unwrap().len(), 2);
        });
    }
}
