//! Offline stub of the `criterion` API surface this workspace uses
//! (see `vendor/README.md`).
//!
//! A minimal time-boxed harness behind the real crate's entry points:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`, and `Bencher::iter`.
//! It reports mean wall-clock ns/iter (plus element throughput when set) —
//! good enough to run the benches and eyeball relative cost, with none of
//! upstream's statistics, warm-up tuning, or plotting.

use std::time::{Duration, Instant};

/// Target wall-clock spend per benchmark (upstream defaults to seconds;
/// the stub keeps bench runs quick).
const TARGET: Duration = Duration::from_millis(200);
const WARMUP: Duration = Duration::from_millis(50);

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, f);
        self
    }
}

/// Declared per-iteration work, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark name within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone (e.g. `group/4`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// See [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints as it
    /// goes, so this only consumes the group).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, repeating it until the time budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() >= self.budget && self.iters >= 10 {
                break;
            }
        }
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up pass (discarded), then the measured pass.
    let mut warm = Bencher {
        total: Duration::ZERO,
        iters: 0,
        budget: WARMUP,
    };
    f(&mut warm);
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        budget: TARGET,
    };
    f(&mut b);

    let ns_per_iter = b.total.as_nanos() as f64 / b.iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!(
                "{label:<40} {ns_per_iter:>12.1} ns/iter   {per_sec:>14.0} elem/s   ({} iters)",
                b.iters
            );
        }
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!(
                "{label:<40} {ns_per_iter:>12.1} ns/iter   {:>11.1} MiB/s   ({} iters)",
                per_sec / (1024.0 * 1024.0),
                b.iters
            );
        }
        _ => {
            println!(
                "{label:<40} {ns_per_iter:>12.1} ns/iter   ({} iters)",
                b.iters
            );
        }
    }
}

/// Declares a benchmark group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut criterion = Criterion::default();
        let mut hits = 0u64;
        criterion.bench_function("counting", |b| b.iter(|| hits += 1));
        assert!(
            hits >= 10,
            "routine should have run at least the minimum iters"
        );
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("group");
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1u32 + 1));
        group.finish();
    }
}
