//! Offline stub of the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! minimal, API-compatible stand-ins for its external dependencies (see
//! `vendor/README.md`). This one wraps `std::sync` primitives and exposes the
//! non-poisoning `parking_lot` interface: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s. Poisoned std locks are recovered
//! via `into_inner`, matching `parking_lot`'s "no poisoning" semantics.

use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
