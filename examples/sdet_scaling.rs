//! Figure 3 in miniature: SDET-like throughput scaling with tracing
//! compiled out / masked off / enabled, on the virtual-time multiprocessor.
//!
//! ```sh
//! cargo run --release --example sdet_scaling
//! ```

use ktrace::ossim::workload::sdet;
use ktrace::vsim::{CostParams, Scheme, VirtualMachine, VmConfig};

fn run(ncpus: usize, scheme: Scheme) -> f64 {
    let mut cfg = VmConfig::new(ncpus);
    cfg.alloc_regions = 64; // the tuned system
    cfg.idle_quantum_ns = 1_000;
    let w = sdet::build(sdet::SdetConfig {
        scripts: 6 * ncpus,
        commands_per_script: 5,
        ..Default::default()
    });
    VirtualMachine::new(cfg, scheme, CostParams::default())
        .run(&w)
        .throughput_per_hour()
}

fn main() {
    println!(
        "{:>5} {:>16} {:>16} {:>16} {:>7}",
        "cpus", "compiled-out", "masked-off", "enabled", "scale"
    );
    let mut base = None;
    for ncpus in [1usize, 2, 4, 8, 16] {
        let out = run(ncpus, Scheme::CompiledOut);
        let masked = run(ncpus, Scheme::MaskedOff);
        let on = run(ncpus, Scheme::LocklessPerCpu);
        let b = *base.get_or_insert(out);
        println!(
            "{ncpus:>5} {out:>16.3e} {masked:>16.3e} {on:>16.3e} {:>6.2}x",
            out / b
        );
    }
    println!("\nthe paper's Fig. 3 shape: near-linear scaling; the masked-off curve is");
    println!("indistinguishable from compiled-out (\"overall performance degradation is");
    println!("less than 1 percent\"), so the instrumentation ships enabled-but-masked.");
}
