//! Performance *monitoring*: watching a live system (§1: "this event log
//! may be examined while the system is running").
//!
//! Workers log continuously; the main thread periodically snapshots the
//! flight recorder and prints a rolling event-rate summary and the most
//! recent activity, without stopping or perturbing the workers.
//!
//! ```sh
//! cargo run --example live_monitor
//! ```

use ktrace::analysis::{EventStats, Trace};
use ktrace::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::default().flight_recorder())
        .clock(clock as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");
    ktrace::events::register_all(&logger);

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|cpu| {
            let h = logger.handle(cpu).expect("cpu");
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.log2(MajorId::MEM, ktrace::events::mem::ALLOC, 64 + i % 256, i);
                    if i.is_multiple_of(3) {
                        h.log3(
                            MajorId::SYSCALL,
                            ktrace::events::syscall::ENTRY,
                            cpu as u64,
                            i,
                            ktrace::events::sysno::READ,
                        );
                    }
                    i += 1;
                    if i.is_multiple_of(1000) {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            })
        })
        .collect();

    for round in 1..=3 {
        std::thread::sleep(Duration::from_millis(120));
        // Snapshot without stopping anything: the monitoring half of the
        // "unified" story.
        let trace = Trace::from_logger(&logger, 1_000_000_000);
        let stats = EventStats::compute(&trace);
        println!(
            "--- monitor tick {round}: {:.0} events/sec in window ---",
            stats.events_per_sec()
        );
        for ((maj, min), count) in stats.sorted().into_iter().take(3) {
            let name = trace
                .registry
                .lookup(maj, min)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("{maj}/{min}"));
            println!("  {count:>8}  {name}");
        }
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker");
    }
    let s = logger.stats();
    println!(
        "\nfinal: {} events logged, {} dropped",
        s.events_logged, s.dropped_pending
    );
}
