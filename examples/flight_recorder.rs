//! The flight recorder (§4.2): "if the kernel should crash, the most recent
//! activity recorded by the tracing infrastructure is available."
//!
//! The buffers run in circular mode with no consumer; after a simulated
//! crash we dump the last events — optionally filtered by major class, as
//! the paper's debugger hook allows.
//!
//! ```sh
//! cargo run --example flight_recorder
//! ```

use ktrace::prelude::*;
use std::sync::Arc;

fn main() {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small().flight_recorder()) // circular, overwrite-oldest
        .clock(clock as Arc<dyn ClockSource>)
        .build()
        .expect("logger");
    ktrace::events::register_all(&logger);
    let h = logger.handle(0).expect("cpu 0");

    // A long-running "system": far more activity than the buffers hold.
    for i in 0..100_000u64 {
        h.log2(
            MajorId::MEM,
            ktrace::events::mem::ALLOC,
            64 + i % 512,
            0x1000_0000 + i,
        );
        if i % 7 == 0 {
            h.log3(
                MajorId::SCHED,
                ktrace::events::sched::CTX_SWITCH,
                i,
                i + 1,
                i % 5,
            );
        }
        if i == 99_997 {
            // The smoking gun right before the "crash".
            h.log2(
                MajorId::EXCEPTION,
                ktrace::events::exception::PGFLT,
                0xdead,
                0xbad_add,
            );
        }
    }
    println!(
        "simulated crash after 100k+ events in a {} KiB region\n",
        TraceConfig::small().region_words() * 8 / 1024
    );

    // The debugger hook: last N events, newest data still there.
    let registry = logger.registry();
    println!("--- flight recorder: last 8 events ---");
    for e in logger.flight_dump(8, None) {
        let line = registry
            .lookup(e.major, e.minor)
            .and_then(|d| d.describe(&e.payload).ok())
            .unwrap_or_else(|| format!("{:?}", e.payload));
        println!("t={} {line}", e.time);
    }

    println!("\n--- same dump, EXCEPTION class only ---");
    for e in logger.flight_dump(4, Some(&[MajorId::EXCEPTION])) {
        println!("t={} faultAddr {:#x}", e.time, e.payload[1]);
    }
}
