//! Lock-contention analysis (the paper's §4.6 workflow).
//!
//! Runs an allocator-hammering workload on the virtual 8-way machine,
//! produces the Fig. 7 table, applies the fix the table points at (more
//! allocator regions), and reruns — the exact "find the most contended
//! lock, fix it, run the tool again" loop the paper describes.
//!
//! ```sh
//! cargo run --release --example lock_contention
//! ```

use ktrace::analysis::{LockStats, Trace};
use ktrace::ossim::workload::micro;
use ktrace::prelude::TraceConfig;
use ktrace::vsim::{CostParams, Scheme, VirtualMachine, VmConfig};

fn contention_run(alloc_regions: usize) -> LockStats {
    let mut cfg = VmConfig::new(8);
    cfg.alloc_regions = alloc_regions;
    let mut machine = VirtualMachine::new(cfg, Scheme::LocklessPerCpu, CostParams::default())
        .with_emission(TraceConfig {
            buffer_words: 16 * 1024,
            buffers_per_cpu: 16,
            ..TraceConfig::default()
        });
    machine.run(&micro::alloc_contention(16, 60));
    let trace = Trace::from_logger(machine.emitted_logger().expect("emission"), 1_000_000_000);
    LockStats::compute(&trace)
}

fn main() {
    println!("=== before: one allocator region lock (the paper's starting point) ===\n");
    let before = contention_run(1);
    print!("{}", before.render(3, "time"));
    println!(
        "total lock wait: {:.3} ms\n",
        before.total_wait_ns() as f64 / 1e6
    );

    println!("=== after the fix the tool points at: per-process allocator regions ===\n");
    let after = contention_run(16);
    print!("{}", after.render(3, "time"));
    println!(
        "total lock wait: {:.3} ms",
        after.total_wait_ns() as f64 / 1e6
    );

    let improvement = before.total_wait_ns() as f64 / after.total_wait_ns().max(1) as f64;
    println!("\ncontention reduced {improvement:.0}x — rerun the tool and chase the next lock");
}
