//! The kmon-style timeline (Fig. 4): a bird's-eye view of an 8-way run.
//!
//! Runs an SDET-like workload on the virtual 8-way machine, renders the
//! per-CPU activity lanes with the paper's own marked events
//! (`TRACE_USER_RUN_UL_LOADER` / `TRACE_USER_RETURNED_MAIN`), zooms into the
//! middle, and writes an SVG.
//!
//! ```sh
//! cargo run --release --example timeline_demo
//! ```

use ktrace::analysis::{Timeline, TimelineOptions, Trace};
use ktrace::ossim::workload::sdet;
use ktrace::prelude::TraceConfig;
use ktrace::vsim::{CostParams, Scheme, VirtualMachine, VmConfig};

fn main() {
    let cfg = VmConfig::new(8);
    let workload = sdet::build(sdet::SdetConfig {
        scripts: 16,
        commands_per_script: 4,
        ..Default::default()
    });
    let mut machine = VirtualMachine::new(cfg, Scheme::LocklessPerCpu, CostParams::default())
        .with_emission(TraceConfig {
            buffer_words: 16 * 1024,
            buffers_per_cpu: 16,
            ..TraceConfig::default()
        });
    machine.run(&workload);
    let trace = Trace::from_logger(machine.emitted_logger().expect("emission"), 1_000_000_000);

    let opts = TimelineOptions {
        width: 110,
        marks: vec![
            "TRACE_USER_RUN_UL_LOADER".into(),
            "TRACE_USER_RETURNED_MAIN".into(),
        ],
        ..Default::default()
    };
    let timeline = Timeline::build(&trace, &opts);
    print!("{}", timeline.render_ascii());

    // Zoom: the middle third, marking syscall entries.
    let span = trace.end() - trace.origin();
    let zoom = Timeline::build(
        &trace,
        &TimelineOptions {
            width: 110,
            t0: Some(trace.origin() + span / 3),
            t1: Some(trace.origin() + 2 * span / 3),
            marks: vec!["TRACE_SYSCALL_ENTRY".into()],
        },
    );
    println!("\nzoomed to the middle third:");
    print!("{}", zoom.render_ascii());

    // Hardware counters ride the same stream (§2): line their intensity
    // strips up under the activity lanes.
    let counters = ktrace::analysis::CounterReport::compute(&trace);
    println!("\nhardware-counter intensity over the same window:");
    for id in [
        ktrace::events::counter::CYCLES,
        ktrace::events::counter::CACHE_MISSES,
    ] {
        println!(
            "{:>13} |{}|",
            ktrace::events::counter::name(id),
            counters.intensity_strip(id, 110)
        );
    }

    let out = std::env::temp_dir().join("ktrace_timeline.svg");
    std::fs::write(&out, timeline.render_svg()).expect("write svg");
    println!("\nSVG written to {}", out.display());
}
