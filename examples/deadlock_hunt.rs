//! Correctness debugging with the unified trace (§4.2): "a deadlock in the
//! file system space was tracked down with the tracing facility… a trace
//! file was produced and post-processed to detect where the cycle had
//! occurred."
//!
//! Two simulated processes take two locks in opposite orders on the
//! real-threaded machine. The watchdog aborts the hung run; the flight
//! recorder still holds the lock events; the wait-for-graph tool finds the
//! cycle. A printf could never have done this — it "would have changed the
//! timing thereby masking the deadlock".
//!
//! ```sh
//! cargo run --example deadlock_hunt
//! ```

use ktrace::analysis::{find_deadlock, Trace};
use ktrace::ossim::workload::micro;
use ktrace::ossim::{KTracer, Machine, MachineConfig};
use ktrace::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::small().flight_recorder())
        .clock(clock as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");
    ktrace::events::register_all(&logger);

    let mut config = MachineConfig::fast_test(2);
    config.watchdog = Duration::from_millis(400);
    let machine = Machine::new(config, Arc::new(KTracer::new(logger)));

    // AB-BA: each task holds one lock ~200ms before requesting the other.
    println!("running the AB-BA workload (will hang until the watchdog fires)…");
    let report = machine.run(micro::ab_ba_deadlock(800_000_000));
    println!("run aborted by watchdog: {}\n", report.aborted);

    let trace = Trace::from_logger(machine.tracer().logger(), 1_000_000_000);
    match find_deadlock(&trace) {
        Some(found) => print!("{}", found.render()),
        None => println!("no cycle found (the tasks slipped past each other — rerun)"),
    }
}
