//! Quickstart: the whole pipeline in one file.
//!
//! Log events from several threads through the lockless per-CPU buffers,
//! stream them to a trace file, read the file back, and print the Fig. 5
//! style listing — entirely through the public API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ktrace::prelude::*;
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("ktrace-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("quickstart.ktrace");

    // 1. A logger with one lockless buffer region per "CPU".
    let clock: Arc<SyncClock> = Arc::new(SyncClock::new());
    let logger = TraceLogger::builder()
        .geometry(TraceConfig::default())
        .clock(clock.clone() as Arc<dyn ClockSource>)
        .ncpus(2)
        .build()
        .expect("logger");

    // 2. Self-describing events: declared once, rendered by any tool.
    logger.register_event(
        MajorId::USER,
        1,
        EventDescriptor::new(
            "TRACE_APP_REQUEST",
            "64 64",
            "request %0[%d] handled in %1[%d] ns",
        )
        .expect("valid descriptor"),
    );
    logger.register_event(
        MajorId::USER,
        2,
        EventDescriptor::new("TRACE_APP_PHASE", "str", "entering phase %0[%s]")
            .expect("valid descriptor"),
    );

    // 3. A session: a background drainer streams completed buffers to disk
    //    while the application keeps logging.
    let session = TraceSession::builder()
        .logger(logger.clone())
        .clock(clock.clone())
        .create(&path)
        .expect("session");

    // 4. Log from two threads, each bound to its own CPU's buffers.
    let workers: Vec<_> = (0..2)
        .map(|cpu| {
            let handle = session.logger().handle(cpu).expect("cpu in range");
            std::thread::spawn(move || {
                handle
                    .log_fields(
                        MajorId::USER,
                        2,
                        &[FieldValue::Str(format!("worker-{cpu}"))],
                    )
                    .expect("spec matches");
                for i in 0..10_000u64 {
                    // The hot path: a CAS in a per-CPU buffer, nothing else.
                    handle.log2(MajorId::USER, 1, i, 100 + i % 900);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    let records = session.finish().records_written;
    println!("wrote {records} buffer records to {}\n", path.display());

    // 5. Read back and render: the registry travels inside the file.
    let trace = Trace::from_file(&path).expect("read trace");
    println!("--- first 10 events ---");
    print!(
        "{}",
        render_listing(
            &trace,
            &ListingOptions {
                hide_control: true,
                limit: 10,
                ..Default::default()
            }
        )
    );
    println!(
        "\ntotal events in file: {}",
        trace.events.iter().filter(|e| !e.is_control()).count()
    );

    std::fs::remove_dir_all(&dir).ok();
}
