//! The paper's first tuning discovery, §4: "we noticed large idle periods on
//! many processors when the benchmark started … caused by poor coordination
//! between the timing and start routines of the benchmark."
//!
//! A "poorly coordinated" benchmark launcher releases its scripts one at a
//! time with think-time in between, leaving the other CPUs idle at startup;
//! the utilization tool flags exactly those gaps. The fixed launcher releases
//! everything at once.
//!
//! ```sh
//! cargo run --release --example idle_hunt
//! ```

use ktrace::analysis::{Trace, Utilization};
use ktrace::ossim::task::{Op, ProcessSpec, Program};
use ktrace::ossim::workload::{sdet, Workload};
use ktrace::prelude::TraceConfig;
use ktrace::vsim::{CostParams, Scheme, VirtualMachine, VmConfig};

/// Wraps the SDET scripts behind a serial launcher with per-script delay.
fn staggered(scripts: Workload, delay_ns: u64) -> Workload {
    let mut launcher = Program::new();
    for spec in scripts.processes {
        launcher = launcher
            .compute(delay_ns, ktrace::events::func::USER_COMPUTE)
            .op(Op::Spawn {
                child: Box::new(spec),
            });
    }
    launcher = launcher.op(Op::WaitChildren);
    Workload::new(vec![ProcessSpec::new("launcher", launcher)])
}

fn run(workload: &Workload) -> Trace {
    let mut machine = VirtualMachine::new(
        VmConfig::new(8),
        Scheme::LocklessPerCpu,
        CostParams::default(),
    )
    .with_emission(TraceConfig {
        buffer_words: 16 * 1024,
        buffers_per_cpu: 16,
        ..TraceConfig::default()
    });
    machine.run(workload);
    Trace::from_logger(machine.emitted_logger().expect("emission"), 1_000_000_000)
}

fn main() {
    let cfg = sdet::SdetConfig {
        scripts: 16,
        commands_per_script: 3,
        ..Default::default()
    };
    let gap_threshold = 60_000; // flag idle gaps > 60µs

    println!("=== poorly coordinated start (scripts released serially) ===\n");
    let broken = run(&staggered(sdet::build(cfg), 50_000));
    let u = Utilization::compute(&broken);
    print!("{}", u.render(&broken, gap_threshold));

    println!("\n=== fixed start (all scripts released at once) ===\n");
    let fixed = run(&sdet::build(cfg));
    let u2 = Utilization::compute(&fixed);
    print!("{}", u2.render(&fixed, gap_threshold));

    println!(
        "\nmean utilization: {:.0}% -> {:.0}%  (the §4 story: find the idle, fix the start)",
        100.0 * u.mean(),
        100.0 * u2.mean()
    );
}
